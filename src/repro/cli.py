"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``workloads``
    List the workload suite with golden statistics.
``configs``
    Print the simulated core configurations (Table II).
``run WORKLOAD``
    Execute one workload (functionally or on the pipeline) and report
    output, cycles and cache statistics.
``disasm WORKLOAD``
    Disassemble a workload's text section.
``campaign WORKLOAD``
    Run one fault-injection campaign and print the classification.
``fuzz``
    Differential containment fuzzing: deterministic flip sweeps plus
    a lockstep cosimulation oracle; escapes shrink to replayable JSON
    reproducers (``--replay``).
``trace-fault WORKLOAD``
    Replay one campaign run with propagation tracing and print the
    flip's life story next to the instruction trace.
``report [EVENTS]``
    Aggregate an events.jsonl log into a text dashboard (outcome mix,
    throughput, visibility-latency percentiles, retry hot spots);
    ``--json`` emits the same aggregation machine-readably.
``dashboard``
    Cross-layer vulnerability map from cached campaign sidecars:
    structure x phase heatmaps, FPM mix, AVF/PVF/SVF/rPVF divergence
    with opposite-direction flags; ``--html`` writes a
    self-contained HTML file.  Never re-simulates.
``serve``
    Live campaign observatory: serves the dashboard as a
    self-updating page (SSE tail of events.jsonl), JSON APIs over
    the cached sidecars, and a Prometheus ``/metrics`` endpoint.
    Renders from sidecars/events only; per-run trace replay is off
    unless ``--allow-replay``.  With ``--jobs`` it also runs the
    durable campaign job service: a crash-safe on-disk queue behind
    ``POST /api/jobs`` with supervised workers, idempotent
    content-addressed submissions, cancellation, and 429 load
    shedding when the bounded queue fills.
``study``
    Cross-layer comparison over a workload set (mini Fig. 4/Table III).
``casestudy WORKLOAD``
    The §VI.B hardening case study.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core.report import render_percent_table, render_table


def _progress_flag(args) -> "bool | None":
    """``--progress``/``--quiet`` -> tri-state progress switch.

    ``None`` lets ``REPRO_PROGRESS`` decide (see
    :func:`repro.obs.progress.progress_enabled`).
    """
    if getattr(args, "quiet", False):
        return False
    if getattr(args, "progress", False):
        return True
    return None


def _add_planner_flags(parser, with_batch: bool = False) -> None:
    parser.add_argument("--planner", choices=("naive", "two-level"),
                        default=None,
                        help="sampling strategy: 'two-level' "
                             "partitions the fault population into "
                             "equivalence classes and stops each "
                             "cell once its Wilson interval is "
                             "inside --target-margin (default: "
                             "naive fixed-n)")
    parser.add_argument("--target-margin", type=float, default=None,
                        help="two-level stopping margin on the "
                             "weighted vulnerability axis "
                             "(default 0.05)")
    if with_batch:
        parser.add_argument("--batch", type=int, default=None,
                            help="two-level injections per "
                                 "sequential batch (default 16)")


def _add_progress_flags(parser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--progress", action="store_true",
                       help="live per-campaign progress on stderr "
                            "(runs/sec, ETA, outcome counts)")
    group.add_argument("--quiet", action="store_true",
                       help="suppress the progress line even if "
                            "REPRO_PROGRESS is set")


def _cmd_workloads(args) -> int:
    from .injectors.golden import golden_run
    from .workloads.suite import WORKLOAD_NAMES, workload_spec

    rows = []
    for name in WORKLOAD_NAMES:
        spec = workload_spec(name)
        if args.golden:
            golden = golden_run(name, args.config)
            rows.append([name, spec.description[:44],
                         golden.instructions,
                         f"{golden.cycles:.0f}",
                         f"{100 * golden.kernel_instructions / golden.instructions:.1f}%",
                         len(golden.output)])
        else:
            rows.append([name, spec.description[:44],
                         f"~{spec.approx_instructions}", "-", "-", "-"])
    print(render_table(
        ["workload", "description", "instructions", "cycles",
         "kernel", "output B"], rows,
        title=f"workload suite ({args.config})"))
    return 0


def _cmd_configs(_args) -> int:
    from .uarch.config import ALL_CONFIGS

    rows = [[c.name, c.isa, c.frontend_depth, c.rob_size,
             c.n_phys_regs, c.lsq_size,
             f"{c.l1i.size // 1024}K/{c.l1d.size // 1024}K",
             f"{c.l2.size // 1024}K"]
            for c in ALL_CONFIGS]
    print(render_table(
        ["core", "ISA", "stages", "ROB", "phys RF", "LSQ", "L1 I/D",
         "L2"], rows, title="simulated cores (Table II)"))
    return 0


def _cmd_run(args) -> int:
    from .uarch.config import config_by_name
    from .uarch.functional import run_functional
    from .uarch.pipeline import run_pipeline
    from .workloads.suite import load_workload

    config = config_by_name(args.config)
    program = load_workload(args.workload, config.isa,
                            hardened=args.hardened)
    if args.pipeline:
        result = run_pipeline(program, config, collect_stats=True)
        print(f"status   : {result.status.value}")
        print(f"cycles   : {result.cycles:.0f} "
              f"(IPC {result.instructions / result.cycles:.2f})")
        print(f"instrs   : {result.instructions} "
              f"({result.kernel_instructions} kernel)")
        print(f"output   : {len(result.output)} bytes, "
              f"exit {result.exit_code}")
        for name in ("l1i", "l1d", "l2"):
            stats = result.stats[name]
            print(f"{name:8s} : {stats['hits']} hits, "
                  f"{stats['misses']} misses, "
                  f"{stats['writebacks']} writebacks")
        branch = result.stats["branch"]
        print(f"branch   : {branch['mispredicts']}/{branch['lookups']} "
              f"mispredicted")
    else:
        result = run_functional(program, kernel=args.kernel)
        print(f"status   : {result.status.value}")
        print(f"instrs   : {result.instructions}")
        print(f"output   : {len(result.output)} bytes, "
              f"exit {result.exit_code}")
    if args.hexdump:
        print(f"\n{result.output.hex()}")
    return 0 if result.status.value == "completed" else 1


def _cmd_disasm(args) -> int:
    from .isa.disassembler import disassemble_range
    from .uarch.config import config_by_name
    from .workloads.suite import load_workload

    config = config_by_name(args.config)
    program = load_workload(args.workload, config.isa,
                            hardened=args.hardened)
    print(disassemble_range(bytes(program.text.data),
                            program.text.base, program.regs))
    return 0


def _cmd_campaign(args) -> int:
    from .injectors.campaign import run_campaign

    campaign = run_campaign(
        args.workload, args.config, injector=args.injector,
        structure=args.structure, model=args.model, n=args.n,
        seed=args.seed, hardened=args.hardened,
        use_cache=not args.no_cache,
        progress=_progress_flag(args),
        fastpath=args.fastpath,
        planner=args.planner, target_margin=args.target_margin,
        batch=args.batch, batch_lanes=args.batch_lanes)
    print(campaign.summary())
    if campaign.plan:
        plan = campaign.plan
        print(f"planner  : {plan['planner']} "
              f"{plan['actual_n']}/{plan['planned_n']} injections "
              f"({plan['savings']:.2f}x saved), margin "
              f"{plan['margin_attained']:.4f} <= "
              f"{plan['target_margin']:.4f}")
    if args.injector == "gefin":
        print(f"HVF      : {campaign.hvf() * 100:.3f}%")
        rates = campaign.fpm_rates()
        print("FPM      : " + ", ".join(f"{k}={v * 100:.3f}%"
                                        for k, v in rates.items()))
    kinds = {"process-crash": campaign.crash_kind_rate("process-crash"),
             "kernel-panic": campaign.crash_kind_rate("kernel-panic"),
             "hang": campaign.crash_kind_rate("hang")}
    print("crashes  : " + ", ".join(f"{k}={v * 100:.3f}%"
                                    for k, v in kinds.items()))
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import replay, run_fuzz
    from .injectors.campaign import default_workers

    if args.replay:
        result = replay(args.replay, hardened=args.hardened)
        print(result.describe())
        return 0 if result.contained else 1

    n = args.cases if args.cases is not None \
        else int(os.environ.get("REPRO_FUZZ_BUDGET", "500"))
    seed = args.seed if args.seed is not None \
        else int(os.environ.get("REPRO_FUZZ_SEED", "1"))
    workloads = args.workloads or \
        os.environ.get("REPRO_FUZZ_WORKLOADS", "all")
    cosim_every = 0 if args.no_cosim else (
        args.cosim_every if args.cosim_every is not None
        else int(os.environ.get("REPRO_FUZZ_COSIM_EVERY", "64")))
    workers = args.workers if args.workers is not None \
        else default_workers(n)
    report = run_fuzz(
        n, seed=seed, workloads=workloads, config_name=args.config,
        cosim_every=cosim_every, workers=workers,
        repro_dir=args.repro_dir, progress=_progress_flag(args),
        shrink=not args.no_shrink, hardened=args.hardened)
    print(report.render())
    return 0 if report.clean else 1


def _cmd_trace_fault(args) -> int:
    from .obs.tracing import (trace_fault, trace_fault_arch,
                              trace_fault_soft)

    if args.diff:
        from .obs.dashboard import resolve_color_mode
        from .obs.trace_diff import load_or_capture, render_diff

        payload, cached = load_or_capture(
            args.injector, args.workload, args.config, args.seed,
            index=args.index,
            structure=(args.structure if args.injector == "gefin"
                       else None),
            model=args.model if args.injector == "pvf" else None,
            hardened=args.hardened)
        print(render_diff(payload,
                          color=resolve_color_mode(args.color)))
        if cached:
            print("\n(served from the trace sidecar — no "
                  "re-simulation)", file=sys.stderr)
        return 0
    if args.injector == "gefin":
        trace, result = trace_fault(
            args.workload, args.config, args.structure, args.seed,
            index=args.index, hardened=args.hardened)
    elif args.injector == "pvf":
        trace, result = trace_fault_arch(
            args.workload, args.config, args.model, args.seed,
            index=args.index, hardened=args.hardened)
    else:
        trace, result = trace_fault_soft(
            args.workload, args.config, args.seed,
            index=args.index, hardened=args.hardened)
    print(trace.render())
    if args.window:
        print()
        print(_instruction_window(args, trace))
    return 0


def _instruction_window(args, trace) -> str:
    """A golden instruction-trace window around the injection point."""
    from .injectors.golden import golden_run
    from .isa.registers import register_set
    from .uarch.config import config_by_name
    from .uarch.trace import trace_program
    from .workloads.suite import load_workload

    config = config_by_name(args.config)
    golden = golden_run(args.workload, args.config,
                        hardened=args.hardened)
    if trace.injector == "gefin":
        # the pipeline injects on a cycle; map it onto the dynamic
        # instruction stream through the golden IPC
        ipc = golden.pipe_instructions / max(golden.cycles, 1.0)
        centre = int(trace.inject_cycle * ipc)
    else:
        centre = int(trace.inject_cycle)
    start = max(0, centre - args.window // 2)
    program = load_workload(args.workload, config.isa,
                            hardened=args.hardened)
    window = trace_program(program, start=start, count=args.window)
    head = (f"golden instruction trace around the injection "
            f"(instructions {start}..{start + args.window}):")
    return head + "\n" + window.render(register_set(config.isa))


def _cmd_report(args) -> int:
    import json
    from pathlib import Path

    from .injectors.golden import cache_dir
    from .obs.reporting import load_events, render_report, report_data

    path = args.events if args.events \
        else cache_dir() / "events.jsonl"
    if str(path) != "-" and not Path(path).exists():
        print(f"no event log at {path} (set REPRO_EVENT_LOG or run "
              f"a campaign first)")
        return 1
    if args.json:
        print(json.dumps(report_data(load_events(path)), indent=2))
    else:
        print(render_report(load_events(path), limit=args.limit))
    return 0


def _cmd_dashboard(args) -> int:
    from .injectors.golden import cache_dir
    from .obs.dashboard import (build_dashboard, render_dashboard,
                                render_html, resolve_color_mode)

    events = args.events if args.events \
        else cache_dir() / "events.jsonl"
    data = build_dashboard(cache_path=args.cache,
                           events_path=events,
                           n_phases=args.phases,
                           n_regions=args.regions)
    print(render_dashboard(data, color=resolve_color_mode(args.color)))
    if args.html:
        from pathlib import Path

        Path(args.html).write_text(render_html(data))
        print(f"\nwrote {args.html}", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    from .obs.server import serve

    def announce(line: str) -> None:
        # the bound address goes to stdout unbuffered: with --port 0
        # it is the only way a test/CI harness learns the port
        print(line, flush=True)

    serve(host=args.host, port=args.port, announce=announce,
          cache_path=args.cache, events_path=args.events,
          allow_replay=args.allow_replay,
          poll_interval=args.poll_interval,
          jobs=args.jobs, max_concurrent=args.max_concurrent,
          queue_depth=args.queue_depth,
          job_timeout=args.job_timeout)
    return 0


def _cmd_trace(args) -> int:
    from .isa.registers import register_set
    from .uarch.config import config_by_name
    from .uarch.trace import trace_program
    from .workloads.suite import load_workload

    config = config_by_name(args.config)
    program = load_workload(args.workload, config.isa,
                            hardened=args.hardened)
    trace = trace_program(program, start=args.start, count=args.count)
    print(trace.render(register_set(config.isa)))
    return 0


def _cmd_ace(args) -> int:
    from .core.ace import ace_analysis, pessimism_vs_injection

    if args.compare:
        comparison = pessimism_vs_injection(args.workload, args.config,
                                            n=args.n, seed=args.seed)
        rows = [[s, f"{ace * 100:.3f}%", f"{inj * 100:.3f}%",
                 f"{ace / max(inj, 1e-9):.1f}x" if inj > 0 else "inf"]
                for s, (ace, inj) in comparison.items()]
        print(render_table(
            ["structure", "ACE estimate", "injection AVF",
             "pessimism"], rows,
            title=f"ACE vs injection: {args.workload} "
                  f"({args.config})"))
    else:
        print(ace_analysis(args.workload, args.config).summary())
    return 0


def _cmd_fit(args) -> int:
    from .core.study import CrossLayerStudy, StudyScale
    from .core.weighting import fit_rates

    study = CrossLayerStudy([args.workload], args.config,
                            StudyScale(n_avf=args.n, seed=args.seed))
    rates = fit_rates(study.avf_campaigns(args.workload), study.config,
                      fit_per_bit=args.fit_per_bit)
    rows = [[s, f"{v:.4g}"] for s, v in rates.items()]
    print(render_table(["structure", "FIT"], rows,
                       title=f"FIT rates: {args.workload} "
                             f"({args.config}, "
                             f"FIT/bit={args.fit_per_bit:g})"))
    return 0


def _cmd_study(args) -> int:
    from .core.study import CrossLayerStudy, StudyScale

    if args.fastpath is False:
        # CrossLayerStudy fans out over run_campaign internally; the
        # env override reaches every campaign it spawns
        os.environ["REPRO_FASTPATH"] = "0"
    workloads = args.workloads.split(",")
    scale = StudyScale(n_avf=args.n_avf, n_pvf=args.n_pvf,
                       n_svf=args.n_svf, seed=args.seed)
    study = CrossLayerStudy(workloads, args.config, scale,
                            progress=_progress_flag(args),
                            planner=args.planner,
                            target_margin=args.target_margin)
    methods = args.methods.split(",")
    rows = []
    for workload in workloads:
        row = [workload]
        for method in methods:
            sdc, crash = study.sdc_crash_split(method, workload)
            row.append(sdc + crash)
        rows.append(row)
    print(render_percent_table(["workload", *methods], rows,
                               title=f"cross-layer study "
                                     f"({args.config})"))
    if len(methods) >= 2 and len(workloads) >= 2:
        for i in range(len(methods) - 1):
            comparison = study.compare(methods[i], methods[-1])
            print(f"{comparison.pair_label}: "
                  f"{comparison.opposite_total}/"
                  f"{comparison.pairs_considered} opposite pairs, "
                  f"{comparison.effect_disagreements} effect "
                  f"disagreements")
    if args.planner not in (None, "naive"):
        from .core.planner import planner_table

        campaigns = []
        for workload in workloads:
            if "avf" in methods or "rpvf" in methods:
                campaigns.extend(
                    study.avf_campaigns(workload).values())
            if "pvf" in methods or "rpvf" in methods:
                campaigns.append(study.pvf_campaign(workload))
            if "svf" in methods:
                campaigns.append(study.svf_campaign(workload))
        rows = planner_table(campaigns)
        planned = sum(r["planned_n"] for r in rows)
        actual = sum(r["actual_n"] for r in rows)
        if actual:
            print(f"\nstatistical planning: {actual}/{planned} "
                  f"injections spent across {len(rows)} campaigns "
                  f"({planned / actual:.2f}x saved)")
    return 0


def _cmd_casestudy(args) -> int:
    from .core.casestudy import run_case_study
    from .core.study import StudyScale

    scale = StudyScale(n_avf=args.n_avf, n_pvf=args.n_pvf,
                       n_svf=args.n_svf, seed=args.seed)
    result = run_case_study(args.workload, args.config, scale)
    rows = [["SVF", result.svf.unprotected, result.svf.protected],
            ["PVF", result.pvf.unprotected, result.pvf.protected],
            ["AVF", result.avf.unprotected, result.avf.protected]]
    print(render_percent_table(["layer", "w/o", "w/"], rows,
                               title=f"case study: {args.workload}"))
    print(f"\nslowdown: {result.slowdown:.2f}x")
    print(result.headline())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="cross-layer transient-fault vulnerability "
                    "analysis (ISCA'21 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, workload=True):
        if workload:
            p.add_argument("workload")
        p.add_argument("--config", default="cortex-a72")
        p.add_argument("--hardened", action="store_true")
        p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("workloads", help="list the workload suite")
    p.add_argument("--config", default="cortex-a72")
    p.add_argument("--golden", action="store_true",
                   help="include golden-run statistics (slower)")
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("configs", help="print the core configurations")
    p.set_defaults(func=_cmd_configs)

    p = sub.add_parser("run", help="execute one workload")
    common(p)
    p.add_argument("--pipeline", action="store_true",
                   help="run on the out-of-order timing model")
    p.add_argument("--kernel", choices=("sim", "host"), default="sim")
    p.add_argument("--hexdump", action="store_true")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("disasm", help="disassemble a workload")
    common(p)
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("campaign", help="run a fault-injection campaign")
    common(p)
    p.add_argument("--injector", choices=("gefin", "pvf", "svf"),
                   default="gefin")
    p.add_argument("--structure", default="RF",
                   choices=("RF", "LSQ", "L1I", "L1D", "L2"))
    p.add_argument("--model", default="WD",
                   choices=("WD", "WOI", "WI"))
    p.add_argument("-n", type=int, default=100)
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--no-fastpath", dest="fastpath",
                   action="store_const", const=False, default=None,
                   help="disable the checkpoint fast path and "
                        "simulate every run from reset (default: "
                        "REPRO_FASTPATH, on)")
    p.add_argument("--batch-lanes", type=int, default=None,
                   metavar="N",
                   help="pack up to N pvf/svf runs per bit-parallel "
                        "batch (2..64; 0 disables; default: "
                        "REPRO_BATCH, off)")
    _add_planner_flags(p, with_batch=True)
    _add_progress_flags(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "fuzz",
        help="differential containment fuzzing (see docs/API.md)")
    p.add_argument("-n", "--cases", type=int, default=None,
                   help="sweep budget (default: REPRO_FUZZ_BUDGET "
                        "or 500)")
    p.add_argument("--seed", type=int, default=None,
                   help="sweep seed (default: REPRO_FUZZ_SEED or 1)")
    p.add_argument("--workloads", default=None,
                   help="comma list or 'all' (default: "
                        "REPRO_FUZZ_WORKLOADS or all)")
    p.add_argument("--config", default="cortex-a72")
    p.add_argument("--hardened", action="store_true")
    p.add_argument("--cosim-every", type=int, default=None,
                   help="lockstep snapshot interval in instructions "
                        "(default: REPRO_FUZZ_COSIM_EVERY or 64)")
    p.add_argument("--no-cosim", action="store_true",
                   help="skip the fault-free cosimulation oracle")
    p.add_argument("--no-shrink", action="store_true",
                   help="keep raw escape coordinates (faster triage)")
    p.add_argument("--replay", metavar="FILE", default=None,
                   help="re-execute one JSON reproducer and exit")
    p.add_argument("--repro-dir", default=None,
                   help="where reproducers land (default: "
                        "REPRO_FUZZ_DIR or <cache>/fuzz-repros)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: REPRO_WORKERS "
                        "heuristic)")
    _add_progress_flags(p)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("trace-fault",
                       help="replay one campaign run with "
                            "propagation tracing")
    common(p)
    p.add_argument("--injector", choices=("gefin", "pvf", "svf"),
                   default="gefin")
    p.add_argument("--structure", default="RF",
                   choices=("RF", "LSQ", "L1I", "L1D", "L2"),
                   help="gefin target structure")
    p.add_argument("--model", default="WD",
                   choices=("WD", "WOI", "WI"),
                   help="pvf fault-propagation model")
    p.add_argument("--index", type=int, default=0,
                   help="campaign run index to replay (default 0)")
    p.add_argument("--window", type=int, default=12,
                   help="instructions of golden trace context "
                        "(0 disables)")
    p.add_argument("--diff", action="store_true",
                   help="render the golden-vs-faulty differential "
                        "frames (captured once, then served from "
                        "the trace sidecar)")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--color", action="store_const", const=True,
                       default=None,
                       help="force ANSI colour on (--diff only)")
    group.add_argument("--no-color", dest="color",
                       action="store_const", const=False,
                       help="force ANSI colour off")
    p.set_defaults(func=_cmd_trace_fault)

    p = sub.add_parser("report",
                       help="dashboard from a campaign event log")
    p.add_argument("events", nargs="?", default=None,
                   help="events.jsonl path, '-' for stdin, or a "
                        ".gz log (default: the cache directory's "
                        "log)")
    p.add_argument("--limit", type=int, default=20,
                   help="campaigns to show in detail tables")
    p.add_argument("--json", action="store_true",
                   help="emit the aggregated stats as JSON instead "
                        "of text")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "dashboard",
        help="cross-layer vulnerability map from cached campaigns")
    p.add_argument("--cache", default=None,
                   help="campaign cache directory (default: "
                        "REPRO_CACHE_DIR)")
    p.add_argument("--events", default=None,
                   help="events.jsonl path, '-' for stdin, or a "
                        ".gz log (default: the cache directory's "
                        "log; skipped when absent)")
    p.add_argument("--html", metavar="FILE", default=None,
                   help="also write a self-contained HTML dashboard")
    p.add_argument("--phases", type=int, default=8,
                   help="program-phase windows (default 8)")
    p.add_argument("--regions", type=int, default=4,
                   help="bit regions per structure entry (default 4)")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--color", action="store_const", const=True,
                       default=None,
                       help="force ANSI colour on")
    group.add_argument("--no-color", dest="color",
                       action="store_const", const=False,
                       help="force ANSI colour off")
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser(
        "serve",
        help="live campaign observatory (SSE dashboard + JSON APIs)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port; 0 binds an ephemeral port and "
                        "prints the bound address on stdout")
    p.add_argument("--cache", default=None,
                   help="campaign cache directory (default: "
                        "REPRO_CACHE_DIR)")
    p.add_argument("--events", default=None,
                   help="events.jsonl to tail (default: the cache "
                        "directory's log)")
    p.add_argument("--allow-replay", action="store_true",
                   help="enable the per-run trace drill-down "
                        "endpoint (the one route that simulates; "
                        "everything else renders from sidecars)")
    p.add_argument("--poll-interval", type=float, default=0.5,
                   help="SSE tail poll period in seconds "
                        "(default 0.5)")
    p.add_argument("--jobs", action="store_true",
                   help="enable the durable campaign job service "
                        "(POST /api/jobs write path with a "
                        "crash-safe on-disk queue)")
    p.add_argument("--max-concurrent", type=int, default=2,
                   help="worker threads draining the job queue "
                        "(default 2) — the gate that keeps serving "
                        "responsive while simulating")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="bounded queue capacity; beyond it "
                        "submissions shed with 429 Retry-After "
                        "(default 64)")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job wall-clock deadline in seconds "
                        "(default: none)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("trace", help="dynamic instruction trace")
    common(p)
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--count", type=int, default=60)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("ace", help="analytical ACE-lifetime AVF")
    common(p)
    p.add_argument("--compare", action="store_true",
                   help="compare against injection AVF")
    p.add_argument("-n", type=int, default=30)
    p.set_defaults(func=_cmd_ace)

    p = sub.add_parser("fit", help="FIT-rate report per structure")
    common(p)
    p.add_argument("-n", type=int, default=30)
    p.add_argument("--fit-per-bit", type=float, default=1.0e-4)
    p.set_defaults(func=_cmd_fit)

    p = sub.add_parser("study", help="cross-layer comparison")
    p.add_argument("--workloads", default="sha,qsort,fft,crc32")
    p.add_argument("--config", default="cortex-a72")
    p.add_argument("--methods", default="svf,pvf,avf")
    p.add_argument("--n-avf", type=int, default=20)
    p.add_argument("--n-pvf", type=int, default=80)
    p.add_argument("--n-svf", type=int, default=80)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-fastpath", dest="fastpath",
                   action="store_const", const=False, default=None,
                   help="disable the checkpoint fast path and "
                        "simulate every run from reset (default: "
                        "REPRO_FASTPATH, on)")
    _add_planner_flags(p)
    _add_progress_flags(p)
    p.set_defaults(func=_cmd_study)

    p = sub.add_parser("casestudy", help="hardening case study (§VI.B)")
    common(p)
    p.add_argument("--n-avf", type=int, default=20)
    p.add_argument("--n-pvf", type=int, default=80)
    p.add_argument("--n-svf", type=int, default=80)
    p.set_defaults(func=_cmd_casestudy)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer (head, less) closed the pipe; exit quietly
        # without letting the interpreter complain about the dead fd
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
