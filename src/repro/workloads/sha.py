"""sha — SHA-1 over a 104-byte message (two padded blocks).

MiBench's security/sha analogue.  The message is padded at build time
(padding is constant work); the assembly performs the full message
schedule expansion and all 80 rounds per block.  After each block the
running digest state is written out (mirroring MiBench sha's verbose
mode), which also gives the workload a realistic kernel-time share —
the paper reports ~19.5% kernel time for sha.

Arithmetic convention: zero-extended 32-bit values with an explicit
mask register (``r12 = 0xFFFFFFFF``), so the constant-amount rotations
can use immediate shifts portably on both ISAs.
"""

from __future__ import annotations

import struct

from .common import (
    WorkloadSpec,
    data_words,
    emit_exit,
    emit_write,
    le32,
    random_bytes,
    rotl32,
    u32,
)

_MSG_LEN = 104
_SEED = 0x5EED5


def _padded_message() -> bytes:
    msg = random_bytes(_SEED, _MSG_LEN)
    bit_len = 8 * len(msg)
    padded = msg + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack(">Q", bit_len)
    assert len(padded) % 64 == 0
    return padded


def _message_words() -> list[int]:
    padded = _padded_message()
    return list(struct.unpack(f">{len(padded) // 4}I", padded))


_H_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def reference() -> bytes:
    """SHA-1 with a per-block state dump (little-endian words)."""
    words = _message_words()
    h = list(_H_INIT)
    out = bytearray()
    for block in range(len(words) // 16):
        w = words[16 * block:16 * block + 16] + [0] * 64
        for i in range(16, 80):
            w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1)
        a, b, c, d, e = h
        for i in range(80):
            if i < 20:
                f, k = (b & c) | (~b & d & 0xFFFF_FFFF), _K[0]
            elif i < 40:
                f, k = b ^ c ^ d, _K[1]
            elif i < 60:
                f, k = (b & c) | (b & d) | (c & d), _K[2]
            else:
                f, k = b ^ c ^ d, _K[3]
            temp = u32(rotl32(a, 5) + f + e + k + w[i])
            e, d, c, b, a = d, c, rotl32(b, 30), a, temp
        h = [u32(x + y) for x, y in zip(h, (a, b, c, d, e))]
        for value in h:
            out += le32(value)
    return bytes(out)


def _rot_asm(dst: str, src: str, n: int, t1: str = "r2",
             t2: str = "r3") -> str:
    """rotl32 with immediate shifts + mask register r12."""
    return "\n".join([
        f"    slli {t1}, {src}, {n}",
        f"    srli {t2}, {src}, {32 - n}",
        f"    or   {dst}, {t1}, {t2}",
        f"    and  {dst}, {dst}, r12",
    ])


def _source() -> str:
    n_blocks = len(_message_words()) // 16
    return f"""
# sha: SHA-1 over a {_MSG_LEN}-byte message ({n_blocks} blocks)
.text
_start:
    # 32-bit mask register: srli by 32 is a no-op on mRISC-32 (shift
    # amounts are mod XLEN), and truncates the sign-extension on
    # mRISC-64 — a portable way to build zero-extended 0xFFFFFFFF.
    li   r12, -1
    srli r12, r12, 32
    li   r11, 0               # r11 = block index
block_loop:
    # ---- copy block words into the schedule buffer -------------------
    la   r1, msg
    slli r2, r11, 6           # block * 64 bytes
    add  r1, r1, r2
    la   r2, wbuf
    li   r3, 16
copy_loop:
    lw   r4, 0(r1)
    and  r4, r4, r12
    sw   r4, 0(r2)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, -1
    bnez r3, copy_loop
    # ---- schedule expansion: w[i] = rotl1(w[i-3]^w[i-8]^w[i-14]^w[i-16])
    la   r1, wbuf
    li   r3, 16               # i
expand_loop:
    slli r4, r3, 2
    add  r4, r4, r1           # &w[i]
    lw   r5, -12(r4)          # w[i-3]
    lw   r6, -32(r4)          # w[i-8]
    xor  r5, r5, r6
    lw   r6, -56(r4)          # w[i-14]
    xor  r5, r5, r6
    lw   r6, -64(r4)          # w[i-16]
    xor  r5, r5, r6
    and  r5, r5, r12
    slli r6, r5, 1
    srli r5, r5, 31
    or   r5, r5, r6
    and  r5, r5, r12
    sw   r5, 0(r4)
    addi r3, r3, 1
    slti r4, r3, 80
    bnez r4, expand_loop
    # ---- initialise working vars from the running digest --------------
    la   r1, hstate
    lw   r4, 0(r1)            # a
    lw   r5, 4(r1)            # b
    lw   r6, 8(r1)            # c
    lw   r7, 12(r1)           # d
    lw   r8, 16(r1)           # e
    and  r4, r4, r12
    and  r5, r5, r12
    and  r6, r6, r12
    and  r7, r7, r12
    and  r8, r8, r12
    li   r9, 0                # round index i
round_loop:
    # ---- select f (into r10) and k (into r1) by round range -----------
    slti r2, r9, 20
    beqz r2, rsel_2039
    and  r10, r5, r6          # f = (b & c) | (~b & d)
    not  r2, r5
    and  r2, r2, r7
    or   r10, r10, r2
    and  r10, r10, r12
    li   r1, {_K[0]:#x}
    b    rsel_done
rsel_2039:
    slti r2, r9, 40
    beqz r2, rsel_4059
    xor  r10, r5, r6          # f = b ^ c ^ d
    xor  r10, r10, r7
    li   r1, {_K[1]:#x}
    b    rsel_done
rsel_4059:
    slti r2, r9, 60
    beqz r2, rsel_6079
    and  r10, r5, r6          # f = (b&c) | (b&d) | (c&d)
    and  r2, r5, r7
    or   r10, r10, r2
    and  r2, r6, r7
    or   r10, r10, r2
    li   r1, {_K[2]:#x}
    b    rsel_done
rsel_6079:
    xor  r10, r5, r6
    xor  r10, r10, r7
    li   r1, {_K[3]:#x}
rsel_done:
    # ---- temp = rotl5(a) + f + e + k + w[i] ---------------------------
{_rot_asm('r3', 'r4', 5)}
    add  r3, r3, r10
    add  r3, r3, r8
    add  r3, r3, r1
    la   r2, wbuf
    slli r10, r9, 2
    add  r2, r2, r10
    lw   r2, 0(r2)
    add  r3, r3, r2
    and  r3, r3, r12          # temp
    # ---- rotate the working variables ---------------------------------
    mv   r8, r7               # e = d
    mv   r7, r6               # d = c
    slli r2, r5, 30           # c = rotl30(b)
    srli r6, r5, 2
    or   r6, r6, r2
    and  r6, r6, r12
    mv   r5, r4               # b = a
    mv   r4, r3               # a = temp
    addi r9, r9, 1
    slti r2, r9, 80
    bnez r2, round_loop
    # ---- fold into the running digest ---------------------------------
    la   r1, hstate
    lw   r2, 0(r1)
    add  r2, r2, r4
    and  r2, r2, r12
    sw   r2, 0(r1)
    lw   r2, 4(r1)
    add  r2, r2, r5
    and  r2, r2, r12
    sw   r2, 4(r1)
    lw   r2, 8(r1)
    add  r2, r2, r6
    and  r2, r2, r12
    sw   r2, 8(r1)
    lw   r2, 12(r1)
    add  r2, r2, r7
    and  r2, r2, r12
    sw   r2, 12(r1)
    lw   r2, 16(r1)
    add  r2, r2, r8
    and  r2, r2, r12
    sw   r2, 16(r1)
    # ---- dump the running state (MiBench sha verbose mode) ------------
{emit_write('hstate', 20)}
    addi r11, r11, 1
    slti r2, r11, {n_blocks}
    bnez r2, block_loop
{emit_exit(0)}

.data
{data_words('msg', _message_words())}
{data_words('hstate', _H_INIT)}
wbuf:
    .space 320
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="sha",
        description="SHA-1 digest with per-block state output",
        source=_source(),
        reference=reference,
        approx_instructions=6500,
        tags=("security", "integer", "rotation-heavy"),
    )
