"""Shared integer-DCT machinery for the cjpeg / djpeg workloads.

Both workloads use the same Q13 cosine table and the same exact
integer arithmetic in their Python references and their assembly, so
djpeg's input can be generated at build time by running cjpeg's
forward path in Python.
"""

from __future__ import annotations

import math

from .common import random_bytes

#: number of 8x8 blocks processed by each workload
N_BLOCKS = 1

_IMG_SEED = 0x1A6E

#: Q13 scaled DCT-II basis: C[u][x] = 0.5 * c_u * cos((2x+1) u pi / 16)
COS_SHIFT = 13


def cos_table() -> list[int]:
    table = []
    for u in range(8):
        cu = 1.0 / math.sqrt(2.0) if u == 0 else 1.0
        for x in range(8):
            value = 0.5 * cu * math.cos((2 * x + 1) * u * math.pi / 16.0)
            table.append(int(round(value * (1 << COS_SHIFT))))
    return table


#: luminance-style quantisation table (coarsened for the small inputs)
QUANT = (
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
)

ZIGZAG = (
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
)


def trunc_div(a: int, b: int) -> int:
    """C-style signed division (truncates toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def image_blocks() -> list[list[int]]:
    """N_BLOCKS 8x8 pixel blocks with gradient + noise structure."""
    raw = random_bytes(_IMG_SEED, 64 * N_BLOCKS)
    blocks = []
    for b in range(N_BLOCKS):
        block = []
        for y in range(8):
            for x in range(8):
                base = (x * 16 + y * 9 + b * 37) & 0x7F
                block.append((base + (raw[64 * b + 8 * y + x] & 63))
                             & 0xFF)
        blocks.append(block)
    return blocks


def forward_dct(block: list[int]) -> list[int]:
    """Level shift + separable integer DCT (row pass then column pass)."""
    table = cos_table()
    work = [p - 128 for p in block]
    tmp = [0] * 64
    for y in range(8):
        for u in range(8):
            acc = sum(work[8 * y + x] * table[8 * u + x] for x in range(8))
            tmp[8 * y + u] = acc >> COS_SHIFT
    out = [0] * 64
    for x in range(8):
        for u in range(8):
            acc = sum(tmp[8 * y + x] * table[8 * u + y] for y in range(8))
            out[8 * u + x] = acc >> COS_SHIFT
    return out


def quantise(coeffs: list[int]) -> list[int]:
    return [trunc_div(c, q) for c, q in zip(coeffs, QUANT)]


def rle_encode(quantised: list[int]) -> bytes:
    """Zigzag scan + (run, value) byte pairs, EOB = (0, 0)."""
    out = bytearray()
    run = 0
    for k in range(64):
        value = quantised[ZIGZAG[k]]
        if value == 0:
            run += 1
            continue
        value = max(-128, min(127, value))
        out.append(run & 0xFF)
        out.append(value & 0xFF)
        run = 0
    out += b"\x00\x00"
    return bytes(out)


def cjpeg_quantised_blocks() -> list[list[int]]:
    """The quantised coefficients cjpeg produces (djpeg's input)."""
    return [quantise(forward_dct(b)) for b in image_blocks()]


def inverse_dct(coeffs: list[int]) -> list[int]:
    """Integer IDCT: the transposed (orthonormal) table, >> COS_SHIFT."""
    table = cos_table()
    tmp = [0] * 64
    for y in range(8):
        for x in range(8):
            acc = sum(coeffs[8 * y + u] * table[8 * u + x]
                      for u in range(8))
            tmp[8 * y + x] = acc >> COS_SHIFT
    out = [0] * 64
    for x in range(8):
        for y in range(8):
            acc = sum(tmp[8 * u + x] * table[8 * u + y] for u in range(8))
            out[8 * y + x] = acc >> COS_SHIFT
    return out
