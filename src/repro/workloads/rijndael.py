"""rijndael — AES-128 encryption (2 blocks, full key schedule in asm).

MiBench's security/rijndael analogue.  The S-box is a build-time
table; the key expansion and the ten encryption rounds (SubBytes,
ShiftRows, MixColumns, AddRoundKey) all run in assembly, byte-wise.
Everything is 8-bit data, so the code is trivially portable across
the two ISAs.  Output: 32 bytes of ciphertext.
"""

from __future__ import annotations

from .common import (
    WorkloadSpec,
    data_bytes,
    emit_exit,
    emit_write,
    random_bytes,
)

_SEED_KEY = 0xAE5E
_SEED_PT = 0xB10C
_N_BLOCKS = 2


def _sbox() -> bytes:
    # standard AES S-box, computed (not pasted) for self-containment
    p, q = 1, 1
    inverse = [0] * 256
    # build multiplicative inverses via log/antilog over GF(2^8)
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    inverse[0] = 0
    for value in range(1, 256):
        inverse[value] = exp[255 - log[value]]
    del p, q
    out = bytearray(256)
    for value in range(256):
        b = inverse[value]
        s = b
        for _ in range(4):
            b = ((b << 1) | (b >> 7)) & 0xFF
            s ^= b
        out[value] = s ^ 0x63
    return bytes(out)


def _key() -> bytes:
    return random_bytes(_SEED_KEY, 16)


def _plaintext() -> bytes:
    return random_bytes(_SEED_PT, 16 * _N_BLOCKS)


_SHIFT_ROWS = bytes((0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11))
_RCON = bytes((0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36))


def _xtime(b: int) -> int:
    return ((b << 1) ^ (0x1B if b & 0x80 else 0)) & 0xFF


def _expand_key(key: bytes) -> bytes:
    sbox = _sbox()
    w = bytearray(key)
    for i in range(4, 44):
        temp = list(w[4 * (i - 1):4 * i])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [sbox[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        for j in range(4):
            temp[j] ^= w[4 * (i - 4) + j]
        w.extend(temp)
    return bytes(w)


def _encrypt_block(block: bytes, round_keys: bytes) -> bytes:
    sbox = _sbox()
    state = bytearray(b ^ k for b, k in zip(block, round_keys[:16]))
    for rnd in range(1, 11):
        # SubBytes + ShiftRows
        state = bytearray(sbox[state[_SHIFT_ROWS[i]]] for i in range(16))
        if rnd < 10:
            mixed = bytearray(16)
            for col in range(4):
                s = state[4 * col:4 * col + 4]
                t = s[0] ^ s[1] ^ s[2] ^ s[3]
                for row in range(4):
                    mixed[4 * col + row] = (s[row] ^ t
                                            ^ _xtime(s[row]
                                                     ^ s[(row + 1) % 4]))
            state = mixed
        rk = round_keys[16 * rnd:16 * rnd + 16]
        state = bytearray(b ^ k for b, k in zip(state, rk))
    return bytes(state)


def reference() -> bytes:
    round_keys = _expand_key(_key())
    pt = _plaintext()
    out = bytearray()
    for i in range(_N_BLOCKS):
        out += _encrypt_block(pt[16 * i:16 * i + 16], round_keys)
    return bytes(out)


def _source() -> str:
    return f"""
# rijndael: AES-128 encryption of {_N_BLOCKS} blocks with in-asm key schedule
.text
_start:
    # =========== key expansion: rkeys[0:16] = key; expand to 176 ======
    la   r1, key
    la   r2, rkeys
    li   r3, 16
kx_copy:
    lbu  r4, 0(r1)
    sb   r4, 0(r2)
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, -1
    bnez r3, kx_copy
    li   r5, 4                 # r5 = word index i
kx_loop:
    la   r2, rkeys
    slli r3, r5, 2
    add  r3, r2, r3            # &w[i]
    # temp = w[i-1] bytes in r6..r9
    lbu  r6, -4(r3)
    lbu  r7, -3(r3)
    lbu  r8, -2(r3)
    lbu  r9, -1(r3)
    andi r4, r5, 3
    bnez r4, kx_noperm
    # rotword: (b0,b1,b2,b3) <- (b1,b2,b3,b0), then subword + rcon
    mv   r4, r6
    mv   r6, r7
    mv   r7, r8
    mv   r8, r9
    mv   r9, r4
    la   r1, sbox
    add  r4, r1, r6
    lbu  r6, 0(r4)
    add  r4, r1, r7
    lbu  r7, 0(r4)
    add  r4, r1, r8
    lbu  r8, 0(r4)
    add  r4, r1, r9
    lbu  r9, 0(r4)
    # rcon[i/4 - 1]
    srli r4, r5, 2
    addi r4, r4, -1
    la   r1, rcon
    add  r4, r1, r4
    lbu  r4, 0(r4)
    xor  r6, r6, r4
kx_noperm:
    # temp ^= w[i-4]
    lbu  r4, -16(r3)
    xor  r6, r6, r4
    lbu  r4, -15(r3)
    xor  r7, r7, r4
    lbu  r4, -14(r3)
    xor  r8, r8, r4
    lbu  r4, -13(r3)
    xor  r9, r9, r4
    sb   r6, 0(r3)
    sb   r7, 1(r3)
    sb   r8, 2(r3)
    sb   r9, 3(r3)
    addi r5, r5, 1
    slti r4, r5, 44
    bnez r4, kx_loop

    # =========== encrypt each block ===================================
    li   r12, 0                # r12 = block index
enc_block:
    # ---- state = plaintext ^ rkeys[0:16] ------------------------------
    la   r1, plain
    slli r2, r12, 4
    add  r1, r1, r2
    la   r2, rkeys
    la   r3, state
    li   r4, 16
ark0_loop:
    lbu  r5, 0(r1)
    lbu  r6, 0(r2)
    xor  r5, r5, r6
    sb   r5, 0(r3)
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, -1
    bnez r4, ark0_loop
    li   r11, 1                # r11 = round
enc_round:
    # ---- SubBytes + ShiftRows: tmp[i] = sbox[state[sr[i]]] ------------
    la   r1, srtab
    la   r2, state
    la   r3, tmpst
    la   r4, sbox
    li   r5, 0
sbsr_loop:
    add  r6, r1, r5
    lbu  r6, 0(r6)             # sr[i]
    add  r6, r2, r6
    lbu  r6, 0(r6)             # state[sr[i]]
    add  r6, r4, r6
    lbu  r6, 0(r6)             # sbox[...]
    add  r7, r3, r5
    sb   r6, 0(r7)
    addi r5, r5, 1
    slti r6, r5, 16
    bnez r6, sbsr_loop
    # ---- MixColumns (skip in round 10) --------------------------------
    li   r1, 10
    beq  r11, r1, mix_skip
    la   r1, tmpst
    li   r2, 0                 # column
mix_loop:
    slli r3, r2, 2
    add  r3, r1, r3            # &col[0]
    lbu  r4, 0(r3)
    lbu  r5, 1(r3)
    lbu  r6, 2(r3)
    lbu  r7, 3(r3)
    xor  r8, r4, r5
    xor  r8, r8, r6
    xor  r8, r8, r7            # t = s0^s1^s2^s3
    # s0' = s0 ^ t ^ xtime(s0^s1)
    xor  r9, r4, r5
    slli r10, r9, 1
    srli r9, r9, 7
    neg  r9, r9
    andi r9, r9, 0x1B
    xor  r10, r10, r9
    andi r10, r10, 0xFF
    xor  r10, r10, r4
    xor  r10, r10, r8
    sb   r10, 0(r3)
    # s1' = s1 ^ t ^ xtime(s1^s2)
    xor  r9, r5, r6
    slli r10, r9, 1
    srli r9, r9, 7
    neg  r9, r9
    andi r9, r9, 0x1B
    xor  r10, r10, r9
    andi r10, r10, 0xFF
    xor  r10, r10, r5
    xor  r10, r10, r8
    sb   r10, 1(r3)
    # s2' = s2 ^ t ^ xtime(s2^s3)
    xor  r9, r6, r7
    slli r10, r9, 1
    srli r9, r9, 7
    neg  r9, r9
    andi r9, r9, 0x1B
    xor  r10, r10, r9
    andi r10, r10, 0xFF
    xor  r10, r10, r6
    xor  r10, r10, r8
    sb   r10, 2(r3)
    # s3' = s3 ^ t ^ xtime(s3^s0)
    xor  r9, r7, r4
    slli r10, r9, 1
    srli r9, r9, 7
    neg  r9, r9
    andi r9, r9, 0x1B
    xor  r10, r10, r9
    andi r10, r10, 0xFF
    xor  r10, r10, r7
    xor  r10, r10, r8
    sb   r10, 3(r3)
    addi r2, r2, 1
    slti r3, r2, 4
    bnez r3, mix_loop
mix_skip:
    # ---- AddRoundKey: state = tmpst ^ rkeys[16*round] ------------------
    la   r1, tmpst
    la   r2, rkeys
    slli r3, r11, 4
    add  r2, r2, r3
    la   r3, state
    li   r4, 16
ark_loop:
    lbu  r5, 0(r1)
    lbu  r6, 0(r2)
    xor  r5, r5, r6
    sb   r5, 0(r3)
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, -1
    bnez r4, ark_loop
    addi r11, r11, 1
    slti r1, r11, 11
    bnez r1, enc_round
    # ---- copy state to output ------------------------------------------
    la   r1, state
    la   r2, outbuf
    slli r3, r12, 4
    add  r2, r2, r3
    li   r4, 16
out_copy:
    lbu  r5, 0(r1)
    sb   r5, 0(r2)
    addi r1, r1, 1
    addi r2, r2, 1
    addi r4, r4, -1
    bnez r4, out_copy
    addi r12, r12, 1
    slti r1, r12, {_N_BLOCKS}
    bnez r1, enc_block
{emit_write('outbuf', 16 * _N_BLOCKS)}
{emit_exit(0)}

.data
{data_bytes('sbox', _sbox())}
{data_bytes('key', _key())}
{data_bytes('plain', _plaintext())}
{data_bytes('srtab', _SHIFT_ROWS)}
{data_bytes('rcon', _RCON)}
rkeys:
    .space 176
state:
    .space 16
tmpst:
    .space 16
outbuf:
    .space {16 * _N_BLOCKS}
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="rijndael",
        description="AES-128 encryption with in-assembly key schedule",
        source=_source(),
        reference=reference,
        approx_instructions=9000,
        tags=("security", "byte-oriented", "table-lookup"),
    )
