"""qsort — recursive quicksort (Lomuto partition) of 128 words.

MiBench's auto/qsort analogue.  Exercises the call stack (recursive
calls with saved frames), data-dependent branching and heavy pointer
arithmetic.  Values are 31-bit positive so signed comparison orders
identically on both ISAs.  Output: the sorted array.
"""

from __future__ import annotations

from .common import (
    WorkloadSpec,
    data_words,
    emit_exit,
    emit_write,
    le32,
    xorshift32_stream,
)

_N = 128
_SEED = 0x50F7


def _input_values() -> list[int]:
    return [v & 0x7FFF_FFFF for v in xorshift32_stream(_SEED, _N)]


def reference() -> bytes:
    return b"".join(le32(v) for v in sorted(_input_values()))


def _source() -> str:
    return f"""
# qsort: recursive quicksort of {_N} 32-bit words
.text
_start:
    la   r4, arr             # r4 = array base (global, callee-safe)
    li   r2, 0               # lo
    li   r3, {_N - 1}        # hi
    call qsort_fn
{emit_write('arr', 4 * _N)}
{emit_exit(0)}

# --- qsort_fn(lo=r2, hi=r3); array base in r4; clobbers r5-r10 --------
qsort_fn:
    bge  r2, r3, qs_ret
    # ---- Lomuto partition: pivot = arr[hi] ----------------------------
    slli r5, r3, 2
    add  r5, r5, r4
    lw   r6, 0(r5)           # r6 = pivot
    addi r7, r2, -1          # r7 = i
    mv   r8, r2              # r8 = j
part_loop:
    bge  r8, r3, part_done
    slli r9, r8, 2
    add  r9, r9, r4
    lw   r10, 0(r9)          # arr[j]
    bgt  r10, r6, part_next
    addi r7, r7, 1           # i++
    slli r5, r7, 2
    add  r5, r5, r4
    lw   r11, 0(r5)          # swap arr[i], arr[j]
    sw   r10, 0(r5)
    sw   r11, 0(r9)
part_next:
    addi r8, r8, 1
    b    part_loop
part_done:
    addi r7, r7, 1           # p = i + 1
    slli r5, r7, 2
    add  r5, r5, r4
    lw   r10, 0(r5)          # swap arr[p], arr[hi]
    slli r9, r3, 2
    add  r9, r9, r4
    lw   r11, 0(r9)
    sw   r11, 0(r5)
    sw   r10, 0(r9)
    # ---- recurse: qsort(lo, p-1); qsort(p+1, hi) ----------------------
    addi sp, sp, -32
    sw   r2, 0(sp)           # lo
    sw   r3, 4(sp)           # hi
    sw   r7, 8(sp)           # p
    sw   lr, 12(sp)
    addi r3, r7, -1
    call qsort_fn            # qsort(lo, p-1)
    lw   r7, 8(sp)
    lw   r3, 4(sp)
    addi r2, r7, 1
    call qsort_fn            # qsort(p+1, hi)
    lw   lr, 12(sp)
    addi sp, sp, 32
qs_ret:
    ret

.data
{data_words('arr', _input_values())}
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="qsort",
        description="recursive quicksort of a 128-word array",
        source=_source(),
        reference=reference,
        approx_instructions=11000,
        tags=("auto", "integer", "recursive", "stack-heavy"),
    )
