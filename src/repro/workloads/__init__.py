"""The MiBench-like workload suite (see DESIGN.md for substitutions)."""

from .common import WorkloadSpec
from .suite import WORKLOAD_NAMES, all_specs, load_workload, workload_spec

#: Backwards-friendly alias used by the top-level package.
WORKLOADS = WORKLOAD_NAMES

__all__ = [
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "all_specs",
    "load_workload",
    "workload_spec",
]
