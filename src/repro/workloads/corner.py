"""corner — SUSAN-style corner detection on a 12x12 image.

MiBench's automotive/susan (corners) analogue, reduced to its
computational core: for every interior pixel, the USAN area (number of
neighbours within a brightness threshold of the nucleus) is computed
over a 5x5 window; pixels whose area falls below the geometric
threshold are corners.  Output: the corner-response map (one byte per
interior pixel: the USAN area if it is a corner, 0 otherwise) followed
by the corner count.
"""

from __future__ import annotations

from .common import (
    WorkloadSpec,
    data_bytes,
    emit_exit,
    emit_write,
    le32,
    random_bytes,
)

_W = 12
_H = 12
_BORDER = 2          # 5x5 window
_BRIGHT_T = 24       # brightness threshold
_GEOM_T = 12         # geometric threshold (max USAN area of a corner)
_SEED = 0xC04E4


def _image() -> bytes:
    """A blocky pseudo-random image (structured enough to have corners)."""
    noise = random_bytes(_SEED, _W * _H)
    img = bytearray(_W * _H)
    for y in range(_H):
        for x in range(_W):
            block = 170 if (x // 5 + y // 5) % 2 else 60
            img[y * _W + x] = (block + (noise[y * _W + x] & 31)) & 0xFF
    return bytes(img)


def reference() -> bytes:
    img = _image()
    out = bytearray()
    corners = 0
    for y in range(_BORDER, _H - _BORDER):
        for x in range(_BORDER, _W - _BORDER):
            nucleus = img[y * _W + x]
            area = 0
            for dy in range(-_BORDER, _BORDER + 1):
                for dx in range(-_BORDER, _BORDER + 1):
                    value = img[(y + dy) * _W + (x + dx)]
                    diff = value - nucleus
                    if diff < 0:
                        diff = -diff
                    if diff <= _BRIGHT_T:
                        area += 1
            if area <= _GEOM_T:
                out.append(area)
                corners += 1
            else:
                out.append(0)
    return bytes(out) + le32(corners)


def _source() -> str:
    inner = _W - 2 * _BORDER
    return f"""
# corner: SUSAN-style corner detection ({_W}x{_H}, 5x5 USAN window)
.text
_start:
    li   r11, 0                # corner count
    li   r4, {_BORDER}         # y
y_loop:
    li   r5, {_BORDER}         # x
x_loop:
    # ---- nucleus brightness -------------------------------------------
    li   r1, {_W}
    mul  r1, r4, r1            # y * W
    add  r1, r1, r5
    la   r2, image
    add  r1, r2, r1
    lbu  r6, 0(r1)             # nucleus
    li   r7, 0                 # area
    li   r8, -{_BORDER}        # dy
usan_y:
    li   r9, -{_BORDER}        # dx
usan_x:
    add  r1, r4, r8
    li   r2, {_W}
    mul  r1, r1, r2
    add  r1, r1, r5
    add  r1, r1, r9
    la   r2, image
    add  r1, r2, r1
    lbu  r10, 0(r1)
    sub  r10, r10, r6          # diff
    bge  r10, r0, diff_pos
    neg  r10, r10
diff_pos:
    li   r1, {_BRIGHT_T}
    bgt  r10, r1, usan_next
    addi r7, r7, 1
usan_next:
    addi r9, r9, 1
    li   r1, {_BORDER}
    ble  r9, r1, usan_x
    addi r8, r8, 1
    ble  r8, r1, usan_y
    # ---- geometric threshold -------------------------------------------
    # out[(y-B)*inner + (x-B)] = area if area <= GEOM_T else 0
    addi r1, r4, -{_BORDER}
    li   r2, {inner}
    mul  r1, r1, r2
    addi r2, r5, -{_BORDER}
    add  r1, r1, r2
    la   r2, outbuf
    add  r2, r2, r1
    li   r1, {_GEOM_T}
    bgt  r7, r1, not_corner
    sb   r7, 0(r2)
    addi r11, r11, 1
    b    pixel_next
not_corner:
    sb   r0, 0(r2)
pixel_next:
    addi r5, r5, 1
    li   r1, {_W - _BORDER}
    blt  r5, r1, x_loop
    # ---- stream the completed response row out -----------------------
    la   r2, outbuf
    addi r1, r4, -{_BORDER}
    li   r3, {inner}
    mul  r1, r1, r3
    add  r2, r2, r1
    li   r1, 1
    syscall
    addi r4, r4, 1
    li   r1, {_H - _BORDER}
    blt  r4, r1, y_loop
    # ---- append the corner count ----------------------------------------
    la   r1, outbuf
    sw   r11, {inner * inner}(r1)
{emit_write('outbuf', 4, offset=inner * inner)}
{emit_exit(0)}

.data
{data_bytes('image', _image())}
outbuf:
    .space {inner * inner + 4}
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="corner",
        description="SUSAN-style corner detection (5x5 USAN window)",
        source=_source(),
        reference=reference,
        approx_instructions=10000,
        tags=("automotive", "image", "branch-heavy"),
    )
