"""stringsearch — Boyer-Moore-Horspool search of 8 patterns in a text.

MiBench's office/stringsearch analogue: for each pattern a 256-entry
bad-character shift table is built, then the 512-byte text is scanned.
Output: the match offset (or -1) of each pattern as little-endian
words.
"""

from __future__ import annotations

from .common import (
    WorkloadSpec,
    data_bytes,
    emit_exit,
    emit_write,
    le32,
)

_TEXT = (
    b"In this paper, we revisit the system vulnerability stack for "
    b"transient faults. We reveal severe pitfalls in widely used "
    b"vulnerability measurement approaches, which separate the hardware "
    b"and the software layers. We rely on microarchitecture level fault "
    b"injection to derive very tight full-system vulnerability "
    b"measurements. Analyzing two different ISAs and two different "
    b"microarchitectures for each ISA, we quantify the sources and the "
    b"magnitude of error of architecture and software level methods. "
)[:512].ljust(512, b".")

_PATTERNS = (
    b"vulnerability stack",
    b"microarchitecture",
    b"transient faults",
    b"not-in-the-text",
    b"software layers",
    b"magnitude",
    b"zzz-absent-zzz",
    b"fault injection",
)


def reference() -> bytes:
    out = bytearray()
    for pattern in _PATTERNS:
        index = _TEXT.find(pattern)
        out += le32(index if index >= 0 else -1)
    return bytes(out)


def _pattern_blob() -> tuple[bytes, list[tuple[int, int]]]:
    """Concatenate patterns; return (blob, [(offset, length)])."""
    blob = bytearray()
    meta = []
    for pattern in _PATTERNS:
        meta.append((len(blob), len(pattern)))
        blob.extend(pattern)
    return bytes(blob), meta


def _source() -> str:
    blob, meta = _pattern_blob()
    meta_words = []
    for off, length in meta:
        meta_words += [off, length]
    from .common import data_words

    return f"""
# stringsearch: Horspool search of {len(_PATTERNS)} patterns in 512 bytes
.text
_start:
    li   r12, 0                 # r12 = pattern index
pat_loop:
    # ---- pattern offset/length from the metadata table -----------------
    la   r1, patmeta
    slli r2, r12, 3
    add  r1, r1, r2
    lw   r10, 0(r1)             # pattern offset
    lw   r11, 4(r1)             # pattern length m
    la   r1, patterns
    add  r10, r1, r10           # r10 = pattern base
    # ---- build the bad-character table: shift[c] = m ---------------------
    la   r1, shtab
    li   r2, 256
sh_init:
    sw   r11, 0(r1)
    addi r1, r1, 4
    addi r2, r2, -1
    bnez r2, sh_init
    # shift[pat[i]] = m - 1 - i for i in 0 .. m-2
    li   r2, 0
sh_fill:
    addi r3, r11, -1
    bge  r2, r3, sh_done
    add  r4, r10, r2
    lbu  r4, 0(r4)              # pat[i]
    slli r4, r4, 2
    la   r5, shtab
    add  r4, r5, r4
    sub  r3, r3, r2             # m - 1 - i
    sw   r3, 0(r4)
    addi r2, r2, 1
    b    sh_fill
sh_done:
    # ---- scan: pos in [0, n - m] ------------------------------------------
    li   r2, 0                  # pos
    li   r3, {len(_TEXT)}
    sub  r3, r3, r11            # last valid pos
scan_loop:
    bgt  r2, r3, not_found
    # compare pat[m-1 .. 0] with text[pos + ...] backwards
    addi r4, r11, -1            # j
cmp_loop:
    add  r5, r2, r4
    la   r6, text
    add  r5, r6, r5
    lbu  r5, 0(r5)              # text[pos + j]
    add  r6, r10, r4
    lbu  r6, 0(r6)              # pat[j]
    bne  r5, r6, mismatch
    addi r4, r4, -1
    bge  r4, r0, cmp_loop
    # ---- match at pos -------------------------------------------------------
    mv   r9, r2
    b    record
mismatch:
    # shift by shtab[text[pos + m - 1]]
    addi r4, r11, -1
    add  r5, r2, r4
    la   r6, text
    add  r5, r6, r5
    lbu  r5, 0(r5)
    slli r5, r5, 2
    la   r6, shtab
    add  r5, r6, r5
    lw   r5, 0(r5)
    add  r2, r2, r5
    b    scan_loop
not_found:
    li   r9, -1
record:
    la   r1, outbuf
    slli r2, r12, 2
    add  r1, r1, r2
    sw   r9, 0(r1)
    addi r12, r12, 1
    slti r1, r12, {len(_PATTERNS)}
    bnez r1, pat_loop
{emit_write('outbuf', 4 * len(_PATTERNS))}
{emit_exit(0)}

.data
{data_bytes('text', _TEXT)}
{data_bytes('patterns', blob)}
{data_words('patmeta', meta_words)}
shtab:
    .space 1024
outbuf:
    .space {4 * len(_PATTERNS)}
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="stringsearch",
        description="Horspool multi-pattern text search",
        source=_source(),
        reference=reference,
        approx_instructions=12000,
        tags=("office", "byte-oriented", "branch-heavy"),
    )
