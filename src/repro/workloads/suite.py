"""Workload registry and program cache.

Ten MiBench-named workloads (the paper's §III.C suite).  Each module
under :mod:`repro.workloads` exposes ``build() -> WorkloadSpec``;
this registry assembles them on demand (optionally through the
software fault-tolerance transform) and caches the results —
campaigns re-run the same binaries thousands of times.
"""

from __future__ import annotations

from functools import lru_cache
from importlib import import_module

from ..isa.assembler import assemble
from ..isa.program import Program
from .common import WorkloadSpec

#: The suite, in the paper's figure order.
WORKLOAD_NAMES = (
    "fft",
    "qsort",
    "rijndael",
    "sha",
    "corner",
    "cjpeg",
    "djpeg",
    "stringsearch",
    "crc32",
    "smooth",
)


@lru_cache(maxsize=None)
def workload_spec(name: str) -> WorkloadSpec:
    """Build (and cache) the :class:`WorkloadSpec` for *name*."""
    if name not in WORKLOAD_NAMES:
        raise KeyError(f"unknown workload {name!r}; "
                       f"have {sorted(WORKLOAD_NAMES)}")
    module = import_module(f"repro.workloads.{name}")
    spec = module.build()
    if spec.name != name:  # pragma: no cover - registry invariant
        raise RuntimeError(f"module {name} built spec {spec.name!r}")
    return spec


@lru_cache(maxsize=None)
def load_workload(name: str, isa: str, hardened: bool = False) -> Program:
    """Assemble workload *name* for *isa*.

    With ``hardened=True`` the source first passes through the
    software-based fault-tolerance transform (duplication +
    AN-encoding; mRISC-64 only — mirroring the paper's 64-bit-only
    case study).
    """
    spec = workload_spec(name)
    source = spec.source
    if hardened:
        from ..hardening import harden_source

        source = harden_source(source, isa)
    return assemble(source, isa,
                    name=f"{name}{'+ft' if hardened else ''}")


def all_specs() -> dict[str, WorkloadSpec]:
    """name -> spec for the whole suite."""
    return {name: workload_spec(name) for name in WORKLOAD_NAMES}
