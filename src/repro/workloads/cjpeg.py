"""cjpeg — JPEG-style encoder core (DCT, quantise, zigzag RLE).

MiBench's consumer/cjpeg analogue reduced to the computational
pipeline: level shift, separable integer DCT (Q13 cosine table),
quantisation (signed division by the luminance table), zigzag scan and
run-length entropy coding.  Output: the RLE byte stream of both
blocks.
"""

from __future__ import annotations

from .common import WorkloadSpec, data_bytes, data_words, emit_exit
from .jpeg_common import (
    COS_SHIFT,
    N_BLOCKS,
    QUANT,
    ZIGZAG,
    cos_table,
    forward_dct,
    image_blocks,
    quantise,
    rle_encode,
)


def reference() -> bytes:
    out = bytearray()
    for block in image_blocks():
        out += rle_encode(quantise(forward_dct(block)))
    return bytes(out)


def _flat_image() -> bytes:
    flat = bytearray()
    for block in image_blocks():
        flat.extend(block)
    return bytes(flat)


def _source() -> str:
    return f"""
# cjpeg: integer DCT + quantisation + zigzag RLE over {N_BLOCKS} 8x8 blocks
.text
_start:
    li   r12, 0                # r12 = output byte cursor
    li   r11, 0                # r11 = block index
blk_loop:
    # ---- level shift: work[i] = image[64*blk + i] - 128 ----------------
    la   r1, image
    slli r2, r11, 6
    add  r1, r1, r2
    la   r2, work
    li   r3, 64
shift_loop:
    lbu  r4, 0(r1)
    addi r4, r4, -128
    sw   r4, 0(r2)
    addi r1, r1, 1
    addi r2, r2, 4
    addi r3, r3, -1
    bnez r3, shift_loop
    # ---- row pass: tmp[8y+u] = (sum_x work[8y+x] * C[8u+x]) >> {COS_SHIFT}
    li   r4, 0                 # y
dct_row_y:
    li   r5, 0                 # u
dct_row_u:
    li   r7, 0                 # acc
    li   r6, 0                 # x
dct_row_x:
    slli r1, r4, 3
    add  r1, r1, r6
    slli r1, r1, 2
    la   r2, work
    add  r1, r2, r1
    lw   r8, 0(r1)             # work[8y+x]
    slli r1, r5, 3
    add  r1, r1, r6
    slli r1, r1, 2
    la   r2, ctab
    add  r1, r2, r1
    lw   r9, 0(r1)             # C[8u+x]
    mul  r8, r8, r9
    add  r7, r7, r8
    addi r6, r6, 1
    slti r1, r6, 8
    bnez r1, dct_row_x
    srai r7, r7, {COS_SHIFT}
    slli r1, r4, 3
    add  r1, r1, r5
    slli r1, r1, 2
    la   r2, tmpbuf
    add  r1, r2, r1
    sw   r7, 0(r1)
    addi r5, r5, 1
    slti r1, r5, 8
    bnez r1, dct_row_u
    addi r4, r4, 1
    slti r1, r4, 8
    bnez r1, dct_row_y
    # ---- column pass: out[8u+x] = (sum_y tmp[8y+x] * C[8u+y]) >> {COS_SHIFT}
    li   r4, 0                 # x
dct_col_x:
    li   r5, 0                 # u
dct_col_u:
    li   r7, 0                 # acc
    li   r6, 0                 # y
dct_col_y:
    slli r1, r6, 3
    add  r1, r1, r4
    slli r1, r1, 2
    la   r2, tmpbuf
    add  r1, r2, r1
    lw   r8, 0(r1)             # tmp[8y+x]
    slli r1, r5, 3
    add  r1, r1, r6
    slli r1, r1, 2
    la   r2, ctab
    add  r1, r2, r1
    lw   r9, 0(r1)             # C[8u+y]
    mul  r8, r8, r9
    add  r7, r7, r8
    addi r6, r6, 1
    slti r1, r6, 8
    bnez r1, dct_col_y
    srai r7, r7, {COS_SHIFT}
    slli r1, r5, 3
    add  r1, r1, r4
    slli r1, r1, 2
    la   r2, coefs
    add  r1, r2, r1
    sw   r7, 0(r1)
    addi r5, r5, 1
    slti r1, r5, 8
    bnez r1, dct_col_u
    addi r4, r4, 1
    slti r1, r4, 8
    bnez r1, dct_col_x
    # ---- quantise: coefs[i] /= qtab[i] ---------------------------------
    la   r1, coefs
    la   r2, qtab
    li   r3, 64
quant_loop:
    lw   r4, 0(r1)
    lw   r5, 0(r2)
    div  r4, r4, r5
    sw   r4, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, -1
    bnez r3, quant_loop
    # ---- zigzag + RLE ----------------------------------------------------
    li   r4, 0                 # k
    li   r5, 0                 # run
rle_loop:
    la   r1, zigzag
    add  r1, r1, r4
    lbu  r2, 0(r1)             # zigzag[k]
    slli r2, r2, 2
    la   r1, coefs
    add  r1, r1, r2
    lw   r6, 0(r1)             # value
    bnez r6, rle_emit
    addi r5, r5, 1
    b    rle_next
rle_emit:
    # clamp value to [-128, 127]
    li   r1, -128
    bge  r6, r1, clamp_lo_ok
    li   r6, -128
clamp_lo_ok:
    li   r1, 127
    ble  r6, r1, clamp_hi_ok
    li   r6, 127
clamp_hi_ok:
    la   r1, outbuf
    add  r1, r1, r12
    sb   r5, 0(r1)
    sb   r6, 1(r1)
    addi r12, r12, 2
    li   r5, 0
rle_next:
    addi r4, r4, 1
    slti r1, r4, 64
    bnez r1, rle_loop
    # ---- end of block marker ---------------------------------------------
    la   r1, outbuf
    add  r1, r1, r12
    sb   r0, 0(r1)
    sb   r0, 1(r1)
    addi r12, r12, 2
    addi r11, r11, 1
    slti r1, r11, {N_BLOCKS}
    bnez r1, blk_loop
    # ---- write the RLE stream ---------------------------------------------
    la   r2, outbuf
    mv   r3, r12
    li   r1, 1
    syscall
{emit_exit(0)}

.data
{data_bytes('image', _flat_image())}
{data_words('ctab', cos_table())}
{data_words('qtab', QUANT)}
{data_bytes('zigzag', bytes(ZIGZAG))}
work:
    .space 256
tmpbuf:
    .space 256
coefs:
    .space 256
outbuf:
    .space 512
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="cjpeg",
        description="JPEG-style encode: DCT, quantise, zigzag RLE",
        source=_source(),
        reference=reference,
        approx_instructions=16000,
        tags=("consumer", "mul-heavy", "div"),
    )
