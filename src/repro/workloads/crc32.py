"""crc32 — table-driven CRC-32 (IEEE 802.3, reflected) over 256 bytes.

MiBench's telecomm/CRC32 analogue.  The 256-entry lookup table is
computed at build time and embedded in ``.data``; the kernel loop is
the classic ``crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)``.
Output: the final CRC (little-endian), twice — once raw and once
xor-folded — to give the checker more output surface.
"""

from __future__ import annotations

from .common import (
    WorkloadSpec,
    data_bytes,
    data_words,
    emit_exit,
    emit_write,
    le32,
    random_bytes,
    u32,
)

_POLY = 0xEDB88320
_DATA_LEN = 256
_SEED = 0xC0FFEE


def _crc_table() -> list[int]:
    table = []
    for i in range(256):
        value = i
        for _ in range(8):
            value = (value >> 1) ^ _POLY if value & 1 else value >> 1
        table.append(value)
    return table


def _input_data() -> bytes:
    return random_bytes(_SEED, _DATA_LEN)


def reference() -> bytes:
    table = _crc_table()
    crc = 0xFFFF_FFFF
    for byte in _input_data():
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    crc = u32(crc ^ 0xFFFF_FFFF)
    folded = u32((crc >> 16) ^ (crc & 0xFFFF))
    return le32(crc) + le32(folded)


def _source() -> str:
    return f"""
# crc32: table-driven CRC-32 over {_DATA_LEN} bytes
.text
_start:
    la   r4, data            # r4 = input cursor
    addi r5, r4, {_DATA_LEN} # r5 = end
    la   r6, table           # r6 = table base
    li   r7, -1              # r7 = crc = 0xFFFFFFFF
    li   r8, 255
crc_loop:
    lbu  r9, 0(r4)
    xor  r10, r7, r9
    and  r10, r10, r8        # (crc ^ byte) & 0xFF
    slli r10, r10, 2
    add  r10, r10, r6
    lw   r10, 0(r10)         # table entry (sign-extended-32)
    li   r11, 8
    srlw r7, r7, r11         # crc >> 8 (32-bit logical)
    xor  r7, r7, r10
    addi r4, r4, 1
    blt  r4, r5, crc_loop
    not  r7, r7              # crc ^= 0xFFFFFFFF
    # store the raw crc
    la   r2, outbuf
    sw   r7, 0(r2)
    # fold: (crc >> 16) ^ (crc & 0xFFFF)
    li   r11, 16
    srlw r9, r7, r11
    lui  r10, 0
    ori  r10, r10, 0xFFFF
    and  r10, r7, r10
    xor  r9, r9, r10
    sw   r9, 4(r2)
{emit_write('outbuf', 8)}
{emit_exit(0)}

.data
{data_words('table', _crc_table())}
{data_bytes('data', _input_data())}
outbuf:
    .space 8
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="crc32",
        description="table-driven CRC-32 over a 256-byte buffer",
        source=_source(),
        reference=reference,
        approx_instructions=3200,
        tags=("telecomm", "integer", "table-lookup"),
    )
