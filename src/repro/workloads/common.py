"""Shared infrastructure for the workload suite.

Workloads are written in mRISC assembly, generated from Python so that
lookup tables and input data (CRC tables, trigonometric tables,
S-boxes, images, texts) can be computed at build time and embedded as
``.word``/``.byte`` directives.  Every workload ships with a pure
Python *reference implementation* whose byte-exact output the
simulated golden run must reproduce — this is asserted in the test
suite and is what SDC detection diffs against.

Portability rules (so one source assembles for both ISAs and the
hardening transform can allocate shadow registers on mRISC-64):

* only ``r1``-``r12``, ``sp`` and ``lr`` are used;
* all arithmetic that must wrap at 32 bits uses the W-form mnemonics
  (``addw``, ``subw``, ``mulw``, ``sllw``, ``srlw``, ``sraw``), which
  the assembler lowers to the plain forms on mRISC-32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: syscall numbers, duplicated here so workload sources do not import
#: kernel internals
SYS_EXIT = 0
SYS_WRITE = 1


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload: assembly source + byte-exact Python reference."""

    name: str
    description: str
    source: str
    reference: Callable[[], bytes]
    #: rough dynamic instruction count (documentation; tests sanity-
    #: check the real count is within 4x of this)
    approx_instructions: int = 0
    tags: tuple = field(default=())

    def reference_output(self) -> bytes:
        return self.reference()


# ---------------------------------------------------------------------------
# assembly emission helpers
# ---------------------------------------------------------------------------
def emit_write(buf_label: str, length: int | str,
               offset: int = 0) -> str:
    """Emit a ``sys_write(buf_label + offset, length)`` sequence."""
    lines = [f"    la   r2, {buf_label}"]
    if offset:
        lines.append(f"    addi r2, r2, {offset}")
    if isinstance(length, str):
        lines.append(f"    mv   r3, {length}")
    else:
        lines.append(f"    li   r3, {length}")
    lines += [f"    li   r1, {SYS_WRITE}", "    syscall"]
    return "\n".join(lines)


def emit_exit(code: int = 0) -> str:
    """Emit a ``sys_exit(code)`` sequence."""
    return "\n".join([f"    li   r2, {code}",
                      f"    li   r1, {SYS_EXIT}",
                      "    syscall"])


def data_words(label: str, values, per_line: int = 8) -> str:
    """Emit a labelled ``.word`` table."""
    out = [f"{label}:"]
    values = [v & 0xFFFF_FFFF for v in values]
    for i in range(0, len(values), per_line):
        chunk = ", ".join(f"{v:#x}" for v in values[i:i + per_line])
        out.append(f"    .word {chunk}")
    return "\n".join(out)


def data_bytes(label: str, blob: bytes, per_line: int = 16) -> str:
    """Emit a labelled ``.byte`` table."""
    out = [f"{label}:"]
    for i in range(0, len(blob), per_line):
        chunk = ", ".join(str(b) for b in blob[i:i + per_line])
        out.append(f"    .byte {chunk}")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# deterministic pseudo-random input generation (xorshift32) — used by
# both the assembly .data generators and the Python references, so the
# two always agree.
# ---------------------------------------------------------------------------
def xorshift32_stream(seed: int, count: int) -> list[int]:
    """Deterministic 32-bit pseudo-random values (xorshift32)."""
    state = seed & 0xFFFF_FFFF or 1
    out = []
    for _ in range(count):
        state ^= (state << 13) & 0xFFFF_FFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFF_FFFF
        out.append(state)
    return out


def random_bytes(seed: int, count: int) -> bytes:
    return bytes(v & 0xFF for v in xorshift32_stream(seed, count))


# ---------------------------------------------------------------------------
# 32-bit arithmetic helpers for the Python references
# ---------------------------------------------------------------------------
def u32(value: int) -> int:
    return value & 0xFFFF_FFFF


def rotl32(value: int, n: int) -> int:
    value &= 0xFFFF_FFFF
    return ((value << n) | (value >> (32 - n))) & 0xFFFF_FFFF


def le32(value: int) -> bytes:
    return (value & 0xFFFF_FFFF).to_bytes(4, "little")


def be32(value: int) -> bytes:
    return (value & 0xFFFF_FFFF).to_bytes(4, "big")
