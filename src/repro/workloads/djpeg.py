"""djpeg — JPEG-style decoder core (dequantise, IDCT, clamp).

MiBench's consumer/djpeg analogue: the input is the quantised
coefficient stream produced by cjpeg's forward path (computed at
build time), and the kernel dequantises, runs the integer inverse
DCT and reconstructs clamped 8-bit pixels.  Output: the pixel bytes
of both blocks.
"""

from __future__ import annotations

from .common import WorkloadSpec, data_bytes, data_words, emit_exit, emit_write
from .jpeg_common import (
    COS_SHIFT,
    N_BLOCKS,
    QUANT,
    cjpeg_quantised_blocks,
    cos_table,
    inverse_dct,
)


def reference() -> bytes:
    out = bytearray()
    for quantised in cjpeg_quantised_blocks():
        coeffs = [c * q for c, q in zip(quantised, QUANT)]
        pixels = inverse_dct(coeffs)
        for p in pixels:
            out.append(max(0, min(255, p + 128)))
    return bytes(out)


def _flat_coeffs() -> list[int]:
    flat = []
    for block in cjpeg_quantised_blocks():
        flat.extend(block)
    return flat


def _source() -> str:
    shift = COS_SHIFT
    return f"""
# djpeg: dequantise + integer IDCT + clamp over {N_BLOCKS} 8x8 blocks
.text
_start:
    li   r11, 0                # r11 = block index
blk_loop:
    # ---- dequantise: work[i] = qcoef[64*blk + i] * qtab[i] -------------
    la   r1, qcoef
    slli r2, r11, 8            # 64 words * 4 bytes
    add  r1, r1, r2
    la   r2, qtab
    la   r3, work
    li   r4, 64
deq_loop:
    lw   r5, 0(r1)
    lw   r6, 0(r2)
    mul  r5, r5, r6
    sw   r5, 0(r3)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, 4
    addi r4, r4, -1
    bnez r4, deq_loop
    # ---- row pass: tmp[8y+x] = (sum_u work[8y+u] * C[8u+x]) >> {shift}
    li   r4, 0                 # y
idct_row_y:
    li   r5, 0                 # x
idct_row_x:
    li   r7, 0                 # acc
    li   r6, 0                 # u
idct_row_u:
    slli r1, r4, 3
    add  r1, r1, r6
    slli r1, r1, 2
    la   r2, work
    add  r1, r2, r1
    lw   r8, 0(r1)             # work[8y+u]
    slli r1, r6, 3
    add  r1, r1, r5
    slli r1, r1, 2
    la   r2, ctab
    add  r1, r2, r1
    lw   r9, 0(r1)             # C[8u+x]
    mul  r8, r8, r9
    add  r7, r7, r8
    addi r6, r6, 1
    slti r1, r6, 8
    bnez r1, idct_row_u
    srai r7, r7, {shift}
    slli r1, r4, 3
    add  r1, r1, r5
    slli r1, r1, 2
    la   r2, tmpbuf
    add  r1, r2, r1
    sw   r7, 0(r1)
    addi r5, r5, 1
    slti r1, r5, 8
    bnez r1, idct_row_x
    addi r4, r4, 1
    slti r1, r4, 8
    bnez r1, idct_row_y
    # ---- column pass: pix[8y+x] = (sum_u tmp[8u+x] * C[8u+y]) >> {shift}
    li   r4, 0                 # x
idct_col_x:
    li   r5, 0                 # y
idct_col_y:
    li   r7, 0                 # acc
    li   r6, 0                 # u
idct_col_u:
    slli r1, r6, 3
    add  r1, r1, r4
    slli r1, r1, 2
    la   r2, tmpbuf
    add  r1, r2, r1
    lw   r8, 0(r1)             # tmp[8u+x]
    slli r1, r6, 3
    add  r1, r1, r5
    slli r1, r1, 2
    la   r2, ctab
    add  r1, r2, r1
    lw   r9, 0(r1)             # C[8u+y]
    mul  r8, r8, r9
    add  r7, r7, r8
    addi r6, r6, 1
    slti r1, r6, 8
    bnez r1, idct_col_u
    srai r7, r7, {shift}
    # ---- level shift + clamp to [0, 255] --------------------------------
    addi r7, r7, 128
    bge  r7, r0, clamp_lo_ok
    li   r7, 0
clamp_lo_ok:
    li   r1, 255
    ble  r7, r1, clamp_hi_ok
    li   r7, 255
clamp_hi_ok:
    # out[64*blk + 8y+x]
    slli r1, r5, 3
    add  r1, r1, r4
    slli r2, r11, 6
    add  r1, r1, r2
    la   r2, outbuf
    add  r1, r2, r1
    sb   r7, 0(r1)
    addi r5, r5, 1
    slti r1, r5, 8
    bnez r1, idct_col_y
    addi r4, r4, 1
    slti r1, r4, 8
    bnez r1, idct_col_x
    addi r11, r11, 1
    slti r1, r11, {N_BLOCKS}
    bnez r1, blk_loop
{emit_write('outbuf', 64 * N_BLOCKS)}
{emit_exit(0)}

.data
{data_words('qcoef', _flat_coeffs())}
{data_words('qtab', QUANT)}
{data_words('ctab', cos_table())}
work:
    .space 256
tmpbuf:
    .space 256
outbuf:
    .space {64 * N_BLOCKS}
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="djpeg",
        description="JPEG-style decode: dequantise, IDCT, clamp",
        source=_source(),
        reference=reference,
        approx_instructions=15000,
        tags=("consumer", "mul-heavy", "image"),
    )
