"""smooth — SUSAN-style 3x3 Gaussian smoothing of a 12x12 image.

MiBench's automotive/susan (smoothing) analogue: a separable
[1 2 1; 2 4 2; 1 2 1]/16 kernel over the interior of the image.
Output: the smoothed interior (14x14 bytes).
"""

from __future__ import annotations

from .common import (
    WorkloadSpec,
    data_bytes,
    emit_exit,
    emit_write,
    random_bytes,
)

_W = 12
_H = 12
_SEED = 0x500074

_KERNEL = (1, 2, 1, 2, 4, 2, 1, 2, 1)


def _image() -> bytes:
    noise = random_bytes(_SEED, _W * _H)
    img = bytearray(_W * _H)
    for y in range(_H):
        for x in range(_W):
            gradient = (x * 13 + y * 7) & 0x7F
            img[y * _W + x] = (gradient + (noise[y * _W + x] & 63)) & 0xFF
    return bytes(img)


def reference() -> bytes:
    img = _image()
    inner = _W - 2
    out = bytearray()
    for y in range(1, _H - 1):
        for x in range(1, _W - 1):
            acc = 0
            k = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    acc += _KERNEL[k] * img[(y + dy) * _W + (x + dx)]
                    k += 1
            out.append((acc >> 4) & 0xFF)
    assert len(out) == inner * inner
    return bytes(out)


def _source() -> str:
    inner = _W - 2
    return f"""
# smooth: 3x3 Gaussian smoothing ({_W}x{_H} -> {inner}x{inner})
.text
_start:
    li   r4, 1                 # y
y_loop:
    li   r5, 1                 # x
x_loop:
    li   r7, 0                 # acc
    li   r8, -1                # dy
conv_y:
    li   r9, -1                # dx
conv_x:
    # pixel = image[(y+dy)*16 + (x+dx)]
    add  r1, r4, r8
    li   r2, {_W}
    mul  r1, r1, r2
    add  r1, r1, r5
    add  r1, r1, r9
    la   r2, image
    add  r1, r2, r1
    lbu  r10, 0(r1)
    # weight = kernel[(dy+1)*3 + (dx+1)]
    addi r1, r8, 1
    slli r2, r1, 1
    add  r1, r1, r2            # (dy+1)*3
    add  r1, r1, r9
    addi r1, r1, 1
    la   r2, kernel
    add  r1, r2, r1
    lbu  r11, 0(r1)
    mul  r10, r10, r11
    add  r7, r7, r10
    addi r9, r9, 1
    li   r1, 1
    ble  r9, r1, conv_x
    addi r8, r8, 1
    ble  r8, r1, conv_y
    # out[(y-1)*inner + (x-1)] = acc >> 4
    srli r7, r7, 4
    andi r7, r7, 0xFF
    addi r1, r4, -1
    li   r2, {inner}
    mul  r1, r1, r2
    addi r2, r5, -1
    add  r1, r1, r2
    la   r2, outbuf
    add  r1, r2, r1
    sb   r7, 0(r1)
    addi r5, r5, 1
    li   r1, {_W - 1}
    blt  r5, r1, x_loop
    # ---- stream the completed row out (how image writers behave) ----
    la   r2, outbuf
    addi r1, r4, -1
    li   r3, {inner}
    mul  r1, r1, r3
    add  r2, r2, r1
    li   r1, 1
    syscall
    addi r4, r4, 1
    li   r1, {_H - 1}
    blt  r4, r1, y_loop
{emit_exit(0)}

.data
{data_bytes('image', _image())}
{data_bytes('kernel', bytes(_KERNEL))}
outbuf:
    .space {inner * inner}
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="smooth",
        description="3x3 Gaussian image smoothing",
        source=_source(),
        reference=reference,
        approx_instructions=9500,
        tags=("automotive", "image", "mul-heavy"),
    )
