"""fft — 64-point radix-2 fixed-point FFT (Q15 twiddles).

MiBench's telecomm/FFT analogue.  Decimation-in-time with bit-reversal
reordering and per-stage >>1 scaling (the classic fixed-point guard
against overflow).  All intermediate values fit in signed 32 bits, so
the arithmetic is identical on both ISAs (mRISC-64 keeps values in
sign-extended canonical form automatically).

Output: the 64 complex bins as interleaved little-endian 32-bit words.
"""

from __future__ import annotations

import math

from .common import (
    WorkloadSpec,
    data_words,
    emit_exit,
    emit_write,
    le32,
    xorshift32_stream,
)

_N = 64
_LOG2N = 6
_SEED = 0xF0F7


def _twiddles() -> tuple[list[int], list[int]]:
    """Q15 cos/sin tables for k = 0 .. N/2-1."""
    cos_tab, sin_tab = [], []
    for k in range(_N // 2):
        angle = 2.0 * math.pi * k / _N
        cos_tab.append(int(round(math.cos(angle) * 32767)))
        sin_tab.append(int(round(math.sin(angle) * 32767)))
    return cos_tab, sin_tab


def _input_signal() -> list[int]:
    """Signed 12-bit pseudo-random samples."""
    return [(v & 0xFFF) - 2048 for v in xorshift32_stream(_SEED, _N)]


def _bit_reverse(index: int) -> int:
    out = 0
    for _ in range(_LOG2N):
        out = (out << 1) | (index & 1)
        index >>= 1
    return out


def reference() -> bytes:
    """Verbose-mode FFT: the full complex state is dumped after every
    butterfly stage (6 x 512 B), then the final interleaved spectrum —
    mirroring MiBench FFT's printed per-stage diagnostics and giving
    the workload a realistic streamed-output profile."""
    cos_tab, sin_tab = _twiddles()
    signal = _input_signal()
    re = [signal[_bit_reverse(i)] for i in range(_N)]
    im = [0] * _N
    out = bytearray()
    length = 2
    while length <= _N:
        half = length // 2
        step = _N // length
        for base in range(0, _N, length):
            for j in range(half):
                w_re = cos_tab[j * step]
                w_im = -sin_tab[j * step]
                bi = base + j + half
                ai = base + j
                t_re = (w_re * re[bi] - w_im * im[bi]) >> 15
                t_im = (w_re * im[bi] + w_im * re[bi]) >> 15
                re[bi] = (re[ai] - t_re) >> 1
                im[bi] = (im[ai] - t_im) >> 1
                re[ai] = (re[ai] + t_re) >> 1
                im[ai] = (im[ai] + t_im) >> 1
        for value in re:
            out += le32(value)
        for value in im:
            out += le32(value)
        length *= 2
    for i in range(_N):
        out += le32(re[i]) + le32(im[i])
    return bytes(out)


def _source() -> str:
    reordered = [_input_signal()[_bit_reverse(i)] for i in range(_N)]
    cos_tab, sin_tab = _twiddles()
    return f"""
# fft: {_N}-point radix-2 DIT fixed-point FFT
# The bit-reversal permutation of the *constant* input is precomputed
# at build time (MiBench reads its input from a file; the permutation
# of a known input is input preparation, not kernel work).
.text
_start:
    # ---- stage loop: length = 2, 4, ..., N ---------------------------
    li   r4, 2                 # r4 = length
stage_loop:
    li   r1, {_N}
    bgt  r4, r1, stages_done
    srli r5, r4, 1             # r5 = half
    li   r6, {_N}
    div  r6, r6, r4            # r6 = step
    li   r7, 0                 # r7 = base
group_loop:
    li   r8, 0                 # r8 = j
bfly_loop:
    # ---- load twiddle: w_re = cos[j*step], w_im = -sin[j*step] --------
    mul  r9, r8, r6
    slli r9, r9, 2
    la   r1, costab
    add  r1, r1, r9
    lw   r10, 0(r1)            # w_re
    la   r1, sintab
    add  r1, r1, r9
    lw   r11, 0(r1)
    neg  r11, r11              # w_im = -sin
    # ---- indices: ai = base + j ; bi = ai + half ----------------------
    add  r9, r7, r8
    slli r9, r9, 2             # ai * 4
    slli r12, r5, 2
    add  r12, r9, r12          # bi * 4
    # ---- t = w * x[bi]  (complex, Q15) --------------------------------
    la   r1, rebuf
    add  r2, r1, r12
    lw   r2, 0(r2)             # re[bi]
    la   r1, imbuf
    add  r3, r1, r12
    lw   r3, 0(r3)             # im[bi]
    mul  r1, r10, r2           # w_re * re[bi]
    # t_re = (w_re*re - w_im*im) >> 15  (keep partial in r1)
    mul  r2, r11, r3           # w_im * im[bi]   (re[bi] dead in r2)
    sub  r1, r1, r2
    srai r1, r1, 15            # r1 = t_re
    # recompute loads for t_im (registers are scarce)
    la   r2, rebuf
    add  r2, r2, r12
    lw   r2, 0(r2)             # re[bi] again
    mul  r2, r11, r2           # w_im * re[bi]
    la   r3, imbuf
    add  r3, r3, r12
    lw   r3, 0(r3)             # im[bi]
    mul  r3, r10, r3           # w_re * im[bi]
    add  r2, r3, r2
    srai r2, r2, 15            # r2 = t_im
    # ---- butterfly with >>1 scaling -----------------------------------
    la   r3, rebuf
    add  r3, r3, r9
    lw   r10, 0(r3)            # re[ai]   (w_re dead)
    sub  r11, r10, r1
    srai r11, r11, 1
    add  r10, r10, r1
    srai r10, r10, 1
    sw   r10, 0(r3)            # re[ai]'
    la   r3, rebuf
    add  r3, r3, r12
    sw   r11, 0(r3)            # re[bi]'
    la   r3, imbuf
    add  r3, r3, r9
    lw   r10, 0(r3)            # im[ai]
    sub  r11, r10, r2
    srai r11, r11, 1
    add  r10, r10, r2
    srai r10, r10, 1
    sw   r10, 0(r3)            # im[ai]'
    la   r3, imbuf
    add  r3, r3, r12
    sw   r11, 0(r3)            # im[bi]'
    # ---- loop control --------------------------------------------------
    addi r8, r8, 1
    blt  r8, r5, bfly_loop
    add  r7, r7, r4
    li   r1, {_N}
    blt  r7, r1, group_loop
    # ---- verbose mode: dump the full stage state ----------------------
    la   r2, rebuf
    li   r3, {4 * _N}
    li   r1, 1
    syscall
    la   r2, imbuf
    li   r3, {4 * _N}
    li   r1, 1
    syscall
    slli r4, r4, 1
    b    stage_loop
stages_done:
    # ---- interleave re/im into the output buffer -----------------------
    la   r1, rebuf
    la   r2, imbuf
    la   r3, outbuf
    li   r4, {_N}
pack_loop:
    lw   r5, 0(r1)
    sw   r5, 0(r3)
    lw   r5, 0(r2)
    sw   r5, 4(r3)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, 8
    addi r4, r4, -1
    bnez r4, pack_loop
{emit_write('outbuf', 8 * _N)}
{emit_exit(0)}

.data
{data_words('rebuf', reordered)}
imbuf:
    .space {4 * _N}
{data_words('costab', cos_tab)}
{data_words('sintab', sin_tab)}
outbuf:
    .space {8 * _N}
""".strip()


def build() -> WorkloadSpec:
    return WorkloadSpec(
        name="fft",
        description="64-point radix-2 fixed-point FFT",
        source=_source(),
        reference=reference,
        approx_instructions=9000,
        tags=("telecomm", "fixed-point", "mul-heavy"),
    )
