"""Microarchitectural fault specifications and samplers.

A :class:`FaultSpec` pins down one transient fault completely: the
target structure, the injection cycle, and the bit coordinate inside
the structure.  Campaigns generate specs with
:func:`sample_uniform` — single bit flips, uniformly distributed over
(time x bits), following the statistical formulation the paper adopts
from Leveugle et al. [21].

Two sampling strategies exist:

* ``uniform`` — the textbook population: any bit of the structure at
  any cycle.  For very large, mostly-idle structures (a 2 MiB L2
  running a 16 KiB-footprint workload) almost every sample lands in
  dead state and the estimate of the *vulnerable* tail is noisy.
* ``occupancy`` — variance reduction: the fault is steered into
  currently-live entries at injection time, and the estimator
  re-weights by the golden run's measured average occupancy.  The
  estimate stays unbiased (AVF = P(live) * P(effect | live)) but needs
  far fewer runs for the same confidence on the conditional term.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..uarch.config import STRUCTURES, MicroarchConfig


@dataclass(frozen=True)
class FaultSpec:
    """One transient fault in a microarchitectural structure.

    Coordinates by structure:

    * ``RF``  — ``a`` = physical register, ``b`` = bit.
    * ``LSQ`` — ``a`` = entry index, ``b`` = bit in [addr32 | data].
    * caches  — ``a`` = set, ``b`` = way, ``c`` = bit within line data
      (or within the tag for ``kind="tag"``).

    Extension models beyond the paper's single-bit data flips:
    ``kind="tag"`` targets a cache line's tag field, and ``n_bits > 1``
    flips that many *adjacent* bits (a burst/multi-cell upset).
    """

    structure: str
    cycle: float
    a: int
    b: int
    c: int = 0
    #: steer into live state at application time (occupancy sampling)
    prefer_live: bool = False
    #: "data" (default) or "tag" (caches only)
    kind: str = "data"
    #: number of adjacent bits to flip (>= 1)
    n_bits: int = 1

    def __post_init__(self) -> None:
        if self.structure not in STRUCTURES:
            raise ValueError(f"unknown structure {self.structure!r}")
        if self.cycle < 0:
            raise ValueError("fault cycle must be non-negative")
        if self.kind not in ("data", "tag"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "tag" and self.structure in ("RF", "LSQ"):
            raise ValueError("tag faults target caches only")
        if self.n_bits < 1:
            raise ValueError("n_bits must be at least 1")


def fault_site_bit(config: MicroarchConfig, spec: FaultSpec) -> int:
    """Fold a spec's bit coordinate onto its structure's bit width.

    The result is the bit position *within one entry* of the target
    structure (an RF register, an LSQ entry, a cache line's data or
    tag field), matching the folding the engines apply at the flip
    site.  Attribution profiles bin this into bit regions, so the
    dashboard can show where in the word faults were planted without
    re-deriving any sampling state.
    """
    structure = spec.structure
    if structure == "RF":
        return spec.b % config.xlen
    if structure == "LSQ":
        return spec.b % config.lsq_entry_bits
    cache = {"L1I": config.l1i, "L1D": config.l1d,
             "L2": config.l2}[structure]
    if spec.kind == "tag":
        n_sets = cache.size // (cache.assoc * cache.line_size)
        tag_bits = 32 - (n_sets.bit_length() - 1) \
            - (cache.line_size.bit_length() - 1)
        return spec.c % tag_bits
    return spec.c % (cache.line_size * 8)


def sample_uniform(config: MicroarchConfig, structure: str,
                   t_max: float, rng: random.Random,
                   prefer_live: bool = False) -> FaultSpec:
    """Draw one fault uniformly over (cycles x structure bits)."""
    cycle = rng.uniform(0.0, t_max)
    if structure == "RF":
        return FaultSpec(structure, cycle,
                         a=rng.randrange(config.n_phys_regs),
                         b=rng.randrange(config.xlen),
                         prefer_live=prefer_live)
    if structure == "LSQ":
        return FaultSpec(structure, cycle,
                         a=rng.randrange(config.lsq_size),
                         b=rng.randrange(config.lsq_entry_bits),
                         prefer_live=prefer_live)
    cache = {"L1I": config.l1i, "L1D": config.l1d,
             "L2": config.l2}[structure]
    n_sets = cache.size // (cache.assoc * cache.line_size)
    return FaultSpec(structure, cycle,
                     a=rng.randrange(n_sets),
                     b=rng.randrange(cache.assoc),
                     c=rng.randrange(cache.line_size * 8),
                     prefer_live=prefer_live)


def sample_campaign(config: MicroarchConfig, structure: str,
                    t_max: float, n: int, seed: int,
                    prefer_live: bool = False) -> list[FaultSpec]:
    """Draw *n* independent faults for one campaign (deterministic)."""
    rng = random.Random(repr((seed, structure, config.name)))
    return [sample_uniform(config, structure, t_max, rng,
                           prefer_live=prefer_live)
            for _ in range(n)]
