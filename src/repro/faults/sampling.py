"""Statistical fault-sampling mathematics (Leveugle et al. [21]).

The paper draws 2,000 faults per (structure, workload, core) and
reports a 2.88% margin of error at 99% confidence.  These helpers
implement the same finite-population formulation so every estimate in
this reproduction can be reported with its margin.
"""

from __future__ import annotations

import math
from statistics import NormalDist

#: two-sided normal quantiles for the confidence levels used in
#: fault-injection literature.  These literature constants are kept as
#: a fast path (and so that historic margins stay byte-identical);
#: any other confidence in (0, 1) is computed from the exact normal
#: quantile below.
Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z(confidence: float) -> float:
    try:
        return Z_VALUES[confidence]
    except KeyError:
        pass
    # CLI round-trips produce floats like 0.9900000000000001; accept
    # any real confidence level instead of three blessed keys
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence!r}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def margin_of_error(n: int, population: float = math.inf,
                    p: float = 0.5, confidence: float = 0.99) -> float:
    """Margin of error of a proportion estimated from *n* samples.

    Uses the finite-population correction when *population* is finite;
    ``p=0.5`` gives the worst case, which is what the paper quotes
    (2,000 samples -> 2.88% at 99%).
    """
    if n <= 0:
        raise ValueError("sample size must be positive")
    z = _z(confidence)
    variance = p * (1.0 - p) / n
    if math.isfinite(population) and population > 1:
        if n > population:
            raise ValueError("cannot sample more than the population")
        variance *= (population - n) / (population - 1)
    return z * math.sqrt(variance)


def samples_for_margin(margin: float, population: float = math.inf,
                       p: float = 0.5, confidence: float = 0.99) -> int:
    """Samples needed to reach *margin* (the inverse of the above)."""
    if not 0 < margin < 1:
        raise ValueError("margin must be in (0, 1)")
    z = _z(confidence)
    n0 = (z * z) * p * (1.0 - p) / (margin * margin)
    if math.isfinite(population) and population > 1:
        n0 = n0 / (1.0 + (n0 - 1.0) / population)
        # the finite-population correction asymptotes to the
        # population itself, but ceil() can overshoot it by one —
        # which then makes margin_of_error() reject the round-trip
        # ("cannot sample more than the population")
        return max(1, min(math.ceil(n0), math.floor(population)))
    return math.ceil(n0)


def wilson_interval(successes: int, n: int,
                    confidence: float = 0.99) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    More honest than the normal approximation for the small
    vulnerable-fraction estimates typical of AVF work.
    """
    if n <= 0:
        raise ValueError("sample size must be positive")
    if not 0 <= successes <= n:
        raise ValueError("successes out of range")
    z = _z(confidence)
    phat = successes / n
    denom = 1.0 + z * z / n
    centre = (phat + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(phat * (1 - phat) / n
                                   + z * z / (4 * n * n))
    # guard against float rounding pushing the interval past the
    # estimate at the degenerate endpoints (p == 0 or p == 1)
    low = min(max(0.0, centre - half), phat)
    high = max(min(1.0, centre + half), phat)
    return low, high
