"""Fault-effect classification (the paper's §III.A taxonomy).

Every injection run ends in exactly one of:

* **Masked** — no observable deviation from the fault-free run.
* **SDC** — silent data corruption: the run finished "normally" but
  the program output differs from the golden output.
* **Crash** — no output was produced: process crash, kernel panic, or
  a hang (deadlock/livelock caught by the watchdog).
* **Detected** — a hardened binary's checker fired the ``detect``
  trap.  Per the paper's case-study methodology, detected faults are
  excluded from the vulnerability of the protected binary (a detected
  fault is recoverable, e.g. by re-execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..uarch.exceptions import FaultKind


class Outcome(str, Enum):
    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    DETECTED = "detected"


class CrashKind(str, Enum):
    """Fine-grained crash causes (all map to the paper's Crash class)."""

    PROCESS = "process-crash"   # user-mode architectural fault
    PANIC = "kernel-panic"      # fault raised while in kernel mode
    HANG = "hang"               # watchdog timeout: deadlock / livelock


@dataclass(frozen=True)
class Verdict:
    """Full classification of one injection run."""

    outcome: Outcome
    crash_kind: CrashKind | None = None
    fault_kind: FaultKind | None = None   # architectural cause, if any

    def __post_init__(self) -> None:
        if (self.outcome is Outcome.CRASH) != (self.crash_kind is not None):
            raise ValueError("crash_kind must be set iff outcome is CRASH")

    @property
    def vulnerable(self) -> bool:
        """Whether the run counts toward the vulnerability factor."""
        return self.outcome in (Outcome.SDC, Outcome.CRASH)


def classify(status: str, output: bytes, exit_code: int,
             golden_output: bytes, golden_exit: int,
             fault_kind: FaultKind | None = None,
             fault_in_kernel: bool = False) -> Verdict:
    """Map a raw run result onto the fault-effect taxonomy.

    *status* is a :class:`repro.uarch.functional.RunStatus` value (the
    pipeline engine reuses the same enum).
    """
    if status == "detected":
        return Verdict(Outcome.DETECTED)
    if status == "timeout":
        return Verdict(Outcome.CRASH, CrashKind.HANG)
    if status == "sim-exception":
        kind = CrashKind.PANIC if fault_in_kernel else CrashKind.PROCESS
        return Verdict(Outcome.CRASH, kind, fault_kind)
    # completed: compare outputs
    if output != golden_output or exit_code != golden_exit:
        return Verdict(Outcome.SDC)
    return Verdict(Outcome.MASKED)
