"""Fault Propagation Models (the paper's Table I).

FPMs describe *how* a hardware fault manifests when it crosses into
the software layer — they are simultaneously the fault-effect classes
of the HVF analysis and the possible fault *origins* of architecture-
level (PVF) analysis:

========  ==================================================================
WD        Wrong Data — the right resource was used but its content
          (register or memory word) was corrupt.
WI        Wrong Instruction — a different instruction executed
          (corrupt opcode or corrupt PC / instruction fetch).
WOI       Wrong Operand or Immediate — operand fields (register
          pointers, immediates) of the instruction were corrupt.
ESC       Escaped — the fault corrupted program output *without ever
          re-entering the pipeline* (e.g. output data corrupted in a
          cache and drained by DMA).  By definition ESC cannot be
          modelled by PVF- or SVF-level analysis — the paper measures
          it at up to 62% of all effects.
========  ==================================================================
"""

from __future__ import annotations

from enum import Enum

from ..isa.encoding import OPCODE_BITS


class FPM(str, Enum):
    WD = "WD"
    WI = "WI"
    WOI = "WOI"
    ESC = "ESC"


#: The FPMs that actually reach the software layer and can therefore
#: be used as architecture-level fault origins.  ESC, by definition,
#: cannot.
SOFTWARE_VISIBLE_FPMS = (FPM.WD, FPM.WI, FPM.WOI)

DESCRIPTIONS = {
    FPM.WD: ("Wrong Data", "The correct resource was used, but the "
             "content of the resource (register or memory word) is "
             "corrupted."),
    FPM.WI: ("Wrong Instruction", "A different instruction was executed "
             "compared to the original program flow (corrupted opcode "
             "or incorrect instruction fetching / PC corruption)."),
    FPM.WOI: ("Wrong Operand or Immediate", "One or more instruction "
              "operand fields were corrupted (register pointers or "
              "immediate values)."),
    FPM.ESC: ("Escaped", "Faults that corrupt the program output "
              "without ever reaching the software layer."),
}


def classify_instruction_corruption(pristine: int, corrupted: int) -> FPM:
    """Classify a corrupted instruction word against the original.

    A flip in the opcode field (or any corruption touching it) makes a
    *different instruction* execute — WI.  Flips confined to operand /
    immediate / func bits are WOI.
    """
    diff = (pristine ^ corrupted) & 0xFFFF_FFFF
    if diff == 0:
        raise ValueError("words are identical; nothing to classify")
    for bit in OPCODE_BITS:
        if diff & (1 << bit):
            return FPM.WI
    return FPM.WOI
