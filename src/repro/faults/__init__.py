"""Fault models, effect taxonomy and statistical sampling."""

from .fault import FaultSpec, sample_campaign, sample_uniform
from .fpm import (
    DESCRIPTIONS,
    FPM,
    SOFTWARE_VISIBLE_FPMS,
    classify_instruction_corruption,
)
from .outcomes import CrashKind, Outcome, Verdict, classify
from .sampling import margin_of_error, samples_for_margin, wilson_interval

__all__ = [
    "CrashKind",
    "DESCRIPTIONS",
    "FPM",
    "FaultSpec",
    "Outcome",
    "SOFTWARE_VISIBLE_FPMS",
    "Verdict",
    "classify",
    "classify_instruction_corruption",
    "margin_of_error",
    "sample_campaign",
    "sample_uniform",
    "samples_for_margin",
    "wilson_interval",
]
