"""Execution tracing: disassembled instruction traces with effects.

A debugging aid for workload and injector development: wraps the
functional engine and records, per executed instruction, the PC, the
disassembly, the destination register value it produced and the
privilege mode.  Traces can be windowed (start/count) so multi-
thousand-instruction workloads stay inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.disassembler import format_instr
from ..kernel.loader import build_system_image
from ..uarch.cpu import execute
from ..uarch.exceptions import DetectTrap, SimException
from ..uarch.functional import FunctionalEngine, _dest_reg, _writes_reg


@dataclass
class TraceEntry:
    index: int
    pc: int
    text: str
    in_kernel: bool
    dest: int | None = None
    dest_value: int | None = None

    def render(self, regs) -> str:
        mode = "K" if self.in_kernel else "U"
        effect = ""
        if self.dest is not None:
            effect = f"  ; {regs.name(self.dest)} <- {self.dest_value:#x}"
        return f"{self.index:6d} {mode} {self.pc:#010x}  " \
               f"{self.text}{effect}"


@dataclass
class Trace:
    entries: list = field(default_factory=list)
    status: str = "completed"
    truncated: bool = False

    def render(self, regs) -> str:
        lines = [entry.render(regs) for entry in self.entries]
        if self.truncated:
            lines.append("... (trace window ended before the program)")
        lines.append(f"status: {self.status}")
        return "\n".join(lines)


def trace_program(program, start: int = 0, count: int = 200,
                  max_instructions: int = 500_000) -> Trace:
    """Execute *program* and capture a window of its dynamic trace."""
    engine = FunctionalEngine(build_system_image(program),
                              kernel="sim",
                              max_instructions=max_instructions)
    ms = engine.ms
    trace = Trace()
    status = "completed"
    try:
        while not ms.halted:
            if engine.executed >= max_instructions:
                status = "timeout"
                break
            instr = engine._fetch()
            pc = ms.pc
            ms.pc = execute(instr, ms, engine._core)
            index = engine.executed
            engine.executed += 1
            if index < start:
                continue
            if index >= start + count:
                trace.truncated = True
                status = "window-closed"
                break
            entry = TraceEntry(
                index=index, pc=pc,
                text=format_instr(instr, engine.regs_meta, pc=pc),
                in_kernel=ms.in_kernel)
            if _writes_reg(instr):
                dest = _dest_reg(instr, ms.xlen)
                entry.dest = dest
                entry.dest_value = engine.regs[dest]
            trace.entries.append(entry)
    except SimException as exc:
        status = f"sim-exception: {exc}"
    except DetectTrap:
        status = "detected"
    trace.status = status
    return trace
