"""Functional (timing-free) execution engines.

Two flavours exist, matching the paper's two higher-layer measurement
methods:

* ``kernel="sim"`` — the full architectural machine: syscalls trap into
  the assembly mini-kernel, which executes instruction-by-instruction
  through the same semantics.  This is the engine behind the
  architecture-level (PVF) injector and behind golden-reference runs.

* ``kernel="host"`` — the LLFI model: only *user* instructions execute;
  syscalls are emulated natively by the host (Python), so the kernel
  is invisible to the software layer, exactly as in SVF studies.

The engine supports *fault actions* scheduled on dynamic-instruction
counters, which is how the PVF and SVF injectors implement their fault
models (persistent architectural flips vs. instantaneous destination
flips).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..isa import layout
from ..isa.encoding import Decoded, decode
from ..isa.errors import DecodeError
from ..isa.registers import register_set
from ..kernel.loader import SystemImage, build_system_image
from ..kernel.syscalls import EXIT_CODE_OFFSET, SYS_EXIT, SYS_WRITE
from .cpu import (
    KERNEL_MODE,
    CoreAccess,
    MachineState,
    execute,
)
from .exceptions import (ContainmentError, DetectTrap, FaultKind,
                         SimException)

#: Shared decode cache: (xlen, word) -> Decoded | DecodeError.  Distinct
#: words are few (static instructions + a handful of corrupted
#: variants), and campaigns run thousands of executions of the same
#: binaries, so a process-global cache pays off.
_DECODE_CACHE: dict[tuple[int, int], object] = {}


def cached_decode(word: int, regs) -> Decoded:
    key = (regs.xlen, word)
    hit = _DECODE_CACHE.get(key)
    if hit is None:
        try:
            hit = decode(word, regs)
        except DecodeError as exc:
            hit = exc
        _DECODE_CACHE[key] = hit
    if isinstance(hit, DecodeError):
        raise hit
    return hit


class RunStatus(str, Enum):
    """Raw termination status of one simulated execution."""

    COMPLETED = "completed"
    SIM_EXCEPTION = "sim-exception"    # architectural fault
    TIMEOUT = "timeout"                # watchdog: hang / livelock
    DETECTED = "detected"              # hardened binary fired `detect`


@dataclass
class RunProfile:
    """Optional profiling data collected during a golden run."""

    regs_used: set = field(default_factory=set)
    mem_footprint: set = field(default_factory=set)   # word-aligned addrs
    user_instructions: int = 0
    kernel_instructions: int = 0
    dest_instructions: int = 0        # user instrs that write a register
    store_instructions: int = 0


@dataclass
class FuncResult:
    """Result of one functional execution."""

    status: RunStatus
    output: bytes
    exit_code: int
    instructions: int
    fault_kind: FaultKind | None = None
    fault_in_kernel: bool = False
    profile: RunProfile | None = None


@dataclass
class FaultAction:
    """A state mutation scheduled on a dynamic-instruction counter.

    ``counter`` selects which stream indexes the trigger:
    ``"commit"`` — every executed instruction; ``"user_dest"`` — user
    instructions that write a register (the LLFI population).
    ``when`` is the 0-based index in that stream; ``apply`` receives
    the engine.  For ``user_dest`` the action fires *after* the
    instruction executed (so it can flip the just-written result).
    """

    counter: str
    when: int
    apply: object  # Callable[[FunctionalEngine], None]


class _FunctionalCore(CoreAccess):
    """CoreAccess over a flat register list + sparse memory."""

    __slots__ = ("engine",)

    def __init__(self, engine: "FunctionalEngine") -> None:
        self.engine = engine

    def read_reg(self, index: int) -> int:
        return self.engine.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index:
            self.engine.regs[index] = value

    def load(self, addr: int, nbytes: int, signed: bool) -> int:
        engine = self.engine
        engine.memory.check_access(addr, nbytes, write=False,
                                   kernel_mode=engine.ms.in_kernel)
        if engine.profile is not None:
            engine.profile.mem_footprint.add(addr & ~7)
        if engine.watch_mem:
            engine.last_mem = ("load", addr, nbytes)
        return engine.memory.read_int(addr, nbytes, signed)

    def store(self, addr: int, nbytes: int, value: int) -> None:
        engine = self.engine
        engine.memory.check_access(addr, nbytes, write=True,
                                   kernel_mode=engine.ms.in_kernel)
        if engine.profile is not None:
            engine.profile.mem_footprint.add(addr & ~7)
        if engine.watch_mem:
            engine.last_mem = ("store", addr, nbytes)
        engine.memory.write_int(addr, value, nbytes)


class FunctionalEngine:
    """Timing-free executor over a fresh :class:`SystemImage`."""

    def __init__(self, image: SystemImage, kernel: str = "sim",
                 max_instructions: int = 2_000_000,
                 collect_profile: bool = False) -> None:
        if kernel not in ("sim", "host"):
            raise ValueError("kernel must be 'sim' or 'host'")
        self.image = image
        self.kernel_mode_kind = kernel
        self.memory = image.memory
        self.regs_meta = register_set(image.isa)
        self.regs: list[int] = [0] * self.regs_meta.count
        self.regs[self.regs_meta.stack_reg] = image.initial_sp
        self.ms = MachineState(xlen=self.regs_meta.xlen, pc=image.entry)
        self.max_instructions = max_instructions
        self.profile = RunProfile() if collect_profile else None
        self.executed = 0
        #: architectural destination register of the most recent
        #: register-writing instruction (used by the SVF injector to
        #: flip the just-produced result)
        self.last_dest = 0
        self._host_output = bytearray()
        self._core = _FunctionalCore(self)
        self._actions: list[FaultAction] = []
        self._counters = {"commit": 0, "user_dest": 0}
        #: optional cosimulation hook (see repro.fuzz.oracle): called
        #: with the engine after every executed instruction
        self.arch_probe = None
        #: when True, the core records each memory access as
        #: ``("load"|"store", addr, nbytes)`` in ``last_mem`` (an
        #: arch_probe consumer clears it per step); off by default so
        #: the hot path stays a single attribute test
        self.watch_mem = False
        self.last_mem = None
        #: optional checkpoint hook (see repro.uarch.snapshot): an
        #: object with ``next_check`` (executed-instruction count) and
        #: ``poll(engine)``; polled at the top of the run loop, and a
        #: non-None poll() return ends the run with that result.
        self.fastpath = None

    # ------------------------------------------------------------------
    # fault scheduling
    # ------------------------------------------------------------------
    def schedule(self, action: FaultAction) -> None:
        self._actions.append(action)

    def _fire(self, counter: str, index: int) -> None:
        for action in self._actions:
            if action.counter == counter and action.when == index:
                action.apply(self)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _fetch(self) -> Decoded:
        pc = self.ms.pc
        if pc & 3:
            raise SimException(FaultKind.MISALIGNED, pc,
                               detail="pc", in_kernel=self.ms.in_kernel)
        addr = pc & 0xFFFF_FFFF
        region = self.memory.region_of(addr)
        if region is None:
            raise SimException(FaultKind.FETCH_FAULT, addr,
                               in_kernel=self.ms.in_kernel)
        if region.kernel_only and not self.ms.in_kernel:
            raise SimException(FaultKind.PRIVILEGE_FAULT, addr,
                               detail="fetch", in_kernel=False)
        word = self.memory.read_int(addr, 4)
        try:
            return cached_decode(word, self.regs_meta)
        except DecodeError:
            raise SimException(FaultKind.ILLEGAL_INSTRUCTION, pc,
                               in_kernel=self.ms.in_kernel) from None

    def _host_syscall(self) -> None:
        """Emulate the kernel natively (LLFI view: kernel is invisible)."""
        number = self.regs[1]
        if number == SYS_EXIT:
            self.ms.exit_code = self.regs[2] & 0xFFFF_FFFF
            self.ms.halted = True
            return
        if number == SYS_WRITE:
            buf, length = self.regs[2] & 0xFFFF_FFFF, self.regs[3]
            if length < 0 or len(self._host_output) + length \
                    > layout.OUTPUT_LIMIT - layout.OUTPUT_BASE:
                self.regs[1] = self.ms.mask  # -1
                return
            # The host kernel validates the user pointer like a real one.
            self.memory.check_access(buf, max(length, 1), write=False,
                                     kernel_mode=False)
            self._host_output.extend(self.memory.read(buf, length))
            self.regs[1] = length
            return
        self.regs[1] = self.ms.mask  # -1: unknown syscall

    def run(self) -> FuncResult:
        """Execute to completion and classify the raw termination."""
        ms = self.ms
        core = self._core
        profile = self.profile
        status = RunStatus.COMPLETED
        fault_kind: FaultKind | None = None
        fault_in_kernel = False
        has_actions = bool(self._actions)
        arch_probe = self.arch_probe
        fastpath = self.fastpath
        try:
            while not ms.halted:
                if fastpath is not None \
                        and self.executed >= fastpath.next_check:
                    early = fastpath.poll(self)
                    if early is not None:
                        return early
                if self.executed >= self.max_instructions:
                    status = RunStatus.TIMEOUT
                    break
                instr = self._fetch()
                if has_actions:
                    self._fire("commit", self._counters["commit"])
                    self._counters["commit"] += 1
                if instr.op == "syscall" and self.kernel_mode_kind == "host":
                    ms.pc += 4
                    self._host_syscall()
                else:
                    ms.pc = execute(instr, ms, core)
                self.executed += 1
                if profile is not None:
                    if ms.in_kernel:
                        profile.kernel_instructions += 1
                    else:
                        profile.user_instructions += 1
                        if instr.d.cls == "store":
                            profile.store_instructions += 1
                    if instr.rs1 or instr.rs2:
                        profile.regs_used.add(instr.rs1)
                        profile.regs_used.add(instr.rs2)
                    if _writes_reg(instr):
                        profile.regs_used.add(instr.rd)
                if not ms.in_kernel and _writes_reg(instr):
                    if has_actions:
                        self.last_dest = _dest_reg(instr, ms.xlen)
                        self._fire("user_dest",
                                   self._counters["user_dest"])
                        self._counters["user_dest"] += 1
                    if profile is not None:
                        profile.dest_instructions += 1
                if arch_probe is not None:
                    arch_probe(self)
        except SimException as exc:
            status = RunStatus.SIM_EXCEPTION
            fault_kind = exc.kind
            fault_in_kernel = exc.in_kernel or ms.in_kernel
        except DetectTrap:
            status = RunStatus.DETECTED
        except ContainmentError:
            raise
        except Exception as exc:
            # Containment contract: see PipelineEngine.run — a flip
            # must terminate in a Verdict, never a host traceback.
            raise ContainmentError(
                f"fault escaped the functional model as "
                f"{type(exc).__name__}: {exc}",
                context={
                    "engine": "functional",
                    "error": f"{type(exc).__name__}: {exc}",
                    "pc": ms.pc,
                    "instructions": self.executed,
                }) from exc

        if profile is not None:
            profile.regs_used.discard(0)
        return FuncResult(
            status=status,
            output=self._collect_output(),
            exit_code=self._collect_exit_code(),
            instructions=self.executed,
            fault_kind=fault_kind,
            fault_in_kernel=fault_in_kernel,
            profile=profile,
        )

    # ------------------------------------------------------------------
    # output collection
    # ------------------------------------------------------------------
    def _collect_output(self) -> bytes:
        if self.kernel_mode_kind == "host":
            return bytes(self._host_output)
        out_len = self.memory.read_int(layout.OUTPUT_LEN_ADDR, 4)
        out_len = min(out_len, layout.OUTPUT_LIMIT - layout.OUTPUT_BASE)
        return self.memory.read(layout.OUTPUT_BASE, out_len)

    def _collect_exit_code(self) -> int:
        if self.kernel_mode_kind == "host":
            return self.ms.exit_code
        return self.memory.read_int(
            layout.KERNEL_DATA_BASE + EXIT_CODE_OFFSET, 4)


def _dest_reg(instr: Decoded, xlen: int) -> int:
    """Architectural destination register of a reg-writing instruction."""
    if instr.op == "jal":
        return 14 if xlen == 32 else 30
    return instr.rd


def _writes_reg(instr: Decoded) -> bool:
    """Whether the instruction writes an architectural register != r0."""
    cls = instr.d.cls
    if cls in ("store", "branch", "sys"):
        return instr.op == "jalr" and instr.rd != 0 \
            or instr.op == "jal"
    return instr.rd != 0


def run_functional(user_program, kernel: str = "sim",
                   max_instructions: int = 2_000_000,
                   collect_profile: bool = False,
                   actions: list[FaultAction] | None = None) -> FuncResult:
    """Build a fresh image for *user_program* and run it functionally."""
    image = build_system_image(user_program)
    engine = FunctionalEngine(image, kernel=kernel,
                              max_instructions=max_instructions,
                              collect_profile=collect_profile)
    for action in actions or ():
        engine.schedule(action)
    return engine.run()
