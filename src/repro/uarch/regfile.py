"""Renamed physical register file.

The pipeline renames every architectural destination onto a physical
register drawn from a free list.  The previous mapping of the
destination stays *live* until the new writer commits (that is when a
real core reclaims it), which the model honours via a pending-free
queue keyed by commit cycle.

This structure is one of the paper's five injection targets.  The
fault behaviour falls out of the actual state:

* a flip in a **free** register is dead state — hardware-masked;
* a flip in a **live** register corrupts the value; if the register is
  re-allocated or overwritten before any reader consumes it, the fault
  is again hardware-masked; a consuming read is the architectural
  crossing (FPM ``WD``).
"""

from __future__ import annotations

from collections import deque

FREE = 0
LIVE = 1


class PhysRegFile:
    """Physical registers + rename map + free list."""

    def __init__(self, n_phys: int, n_arch: int, xlen: int) -> None:
        if n_phys < n_arch + 1:
            raise ValueError("need more physical than architectural regs")
        self.n_phys = n_phys
        self.xlen = xlen
        self.mask = (1 << xlen) - 1
        self.values = [0] * n_phys
        self.state = [FREE] * n_phys
        # arch register i starts mapped to physical i.  The zero
        # register is architecturally hardwired: its physical slot is
        # permanently dead state (reads bypass it, writes are dropped,
        # and it never returns to the free list), so faults landing
        # there are masked — as on a real core.
        self.rename_map = list(range(n_arch))
        for p in range(1, n_arch):
            self.state[p] = LIVE
        self.free_list: deque[int] = deque(range(n_arch, n_phys))
        #: (commit_cycle_of_new_writer, phys_to_free), in commit order
        self.pending_free: deque[tuple[float, int]] = deque()
        #: physical registers holding corrupted values
        self.tainted: set[int] = set()
        # occupancy statistics
        self.live_count = n_arch - 1

    @property
    def bits(self) -> int:
        return self.n_phys * self.xlen

    # ------------------------------------------------------------------
    # rename machinery
    # ------------------------------------------------------------------
    def read(self, arch: int) -> tuple[int, int]:
        """Return ``(value, phys_index)`` of an architectural register."""
        p = self.rename_map[arch]
        return self.values[p], p

    def _reclaim(self, now: float) -> None:
        while self.pending_free and self.pending_free[0][0] <= now:
            _, p = self.pending_free.popleft()
            self.state[p] = FREE
            self.tainted.discard(p)
            self.free_list.append(p)
            self.live_count -= 1

    def allocate(self, arch: int, now: float,
                 writer_commit: float) -> tuple[int, float]:
        """Rename *arch* to a fresh physical register.

        Returns ``(phys, stall_until)``: if the free list was empty the
        allocation had to wait for the earliest pending reclamation and
        ``stall_until`` reflects that cycle (else it equals *now*).
        The old mapping is queued for reclamation at *writer_commit*.
        """
        self._reclaim(now)
        stall_until = now
        while not self.free_list:
            if not self.pending_free:
                raise RuntimeError(
                    "physical register file exhausted with nothing "
                    "pending — rename bookkeeping bug")
            stall_until = max(stall_until, self.pending_free[0][0])
            self._reclaim(stall_until)
        p = self.free_list.popleft()
        old = self.rename_map[arch]
        self.rename_map[arch] = p
        self.state[p] = LIVE
        self.tainted.discard(p)
        self.live_count += 1
        self.pending_free.append((writer_commit, old))
        return p, stall_until

    def write(self, phys: int, value: int) -> None:
        self.values[phys] = value & self.mask
        # A newly produced value replaces any corruption in this slot.
        self.tainted.discard(phys)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def flip_bit(self, phys: int, bit: int) -> dict:
        """Flip one bit of a physical register.

        Dead (free) registers absorb the flip with no effect —
        hardware masking by dead state.
        """
        if not 0 <= phys < self.n_phys or not 0 <= bit < self.xlen:
            raise ValueError("register/bit index out of range")
        if self.state[phys] == FREE:
            return {"live": False}
        self.values[phys] ^= 1 << bit
        self.tainted.add(phys)
        return {"live": True, "phys": phys, "bit": bit}

    def occupancy(self) -> float:
        """Fraction of physical registers currently live."""
        return self.live_count / self.n_phys
