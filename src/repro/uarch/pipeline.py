"""The out-of-order pipeline engine (the GeFIN/gem5 stand-in).

This is the microarchitectural heart of the reproduction: an
instruction-granular out-of-order timing model wrapped around
*bit-accurate* state for the paper's five injection targets —
physical register file, load/store queue, L1 instruction cache,
L1 data cache and unified L2.

Timing model (O(1) per instruction)::

    fetch_i    = max(fetch_{i-1} + 1/W_fetch, redirect, ROB head, IQ head)
    dispatch_i = fetch_i + frontend_depth (+ rename/LSQ stalls)
    ready_i    = max(dispatch_i, ready(sources))
    start_i    = max(ready_i, FU available)
    complete_i = start_i + latency (+ D-cache latency for loads)
    commit_i   = max(complete_i + 1, commit_{i-1} + 1/W_commit)

Branch mispredictions redirect fetch to ``complete + penalty``;
syscall/eret serialise the frontend.  Functional execution is eager
and in program order, but *values live in the renamed physical
register file and in data-carrying caches*, so injected faults behave
structurally: dead state masks, live state propagates, corrupt lines
write back, escape to DMA, or re-enter the pipeline as wrong
data/instructions.

HVF instrumentation: the engine records the first *architectural
crossing* — the first committed instruction affected by the injected
corruption — and classifies it into an FPM (WD / WI / WOI).  Runs that
corrupt the output with no crossing are ESC by definition.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from ..isa import layout
from ..isa.encoding import Decoded
from ..isa.errors import DecodeError
from ..isa.registers import register_set
from ..kernel.loader import SystemImage
from ..kernel.syscalls import EXIT_CODE_OFFSET
from .branch import BranchPredictor
from .cache import Cache, MemoryPort, TaintProbe
from .config import MicroarchConfig
from .cpu import CoreAccess, MachineState, execute
from .exceptions import (ContainmentError, DetectTrap, FaultKind,
                         SimException)
from .functional import RunStatus, cached_decode
from .lsq import LoadStoreQueue
from .regfile import PhysRegFile

_LINK32, _LINK64 = 14, 30


def fold_coordinates(engine: "PipelineEngine", spec) -> tuple[int, int, int]:
    """Fold a fault spec's raw ``(a, b, c)`` onto the target geometry.

    The containment contract promises a :class:`Verdict` for *any*
    coordinate triple, not just ones that happen to lie inside the
    structure the spec names on this core: a spec sampled for a large
    core (or fuzzed from arbitrary integers) must land somewhere, the
    way an address decoder ignores bits beyond the array's width.
    Folding is modulo each dimension, so in-range coordinates are
    untouched and campaigns keep their exact historical sampling.
    """
    structure = spec.structure
    a, b, c = spec.a, spec.b, getattr(spec, "c", 0)
    if structure == "RF":
        return a % engine.rf.n_phys, b % engine.rf.xlen, c
    if structure == "LSQ":
        return a % engine.lsq.size, b % engine.lsq.entry_bits, c
    cache = {"L1I": engine.l1i, "L1D": engine.l1d,
             "L2": engine.l2}[structure]
    # c (the bit within line data / tag) is folded at the flip site,
    # where data vs. tag width is known
    return a % cache.n_sets, b % cache.assoc, c


@dataclass
class Crossing:
    """The moment an injected fault became architecturally visible."""

    fpm: str           # FPM value ("WD" / "WI" / "WOI")
    cycle: float
    in_kernel: bool
    #: first corrupted architectural register (rename-map index), if
    #: the crossing happened through a register read
    arch_reg: int | None = None
    #: first corrupted memory/fetch address, if it happened through
    #: a tainted line or a corrupted instruction word
    mem_addr: int | None = None


@dataclass
class PipelineResult:
    """Raw result of one pipeline execution."""

    status: RunStatus
    output: bytes
    exit_code: int
    cycles: float
    instructions: int
    kernel_instructions: int = 0
    fault_applied: bool = False
    fault_live: bool = False
    crossing: Crossing | None = None
    fault_kind: FaultKind | None = None
    fault_in_kernel: bool = False
    occupancy: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)


class _PipelineCore(CoreAccess):
    """CoreAccess adapter over the renamed register file + caches."""

    __slots__ = ("e",)

    def __init__(self, engine: "PipelineEngine") -> None:
        self.e = engine

    def read_reg(self, index: int) -> int:
        e = self.e
        # Sources were resolved through the rename map *before* the
        # destination was renamed (else ``add r3, r3, r1`` would read
        # its own unwritten destination register).
        cached = e.src_vals.get(index)
        if cached is not None:
            return cached
        value, phys = e.rf.read(index)
        if phys in e.rf.tainted and e.crossing is None:
            e.record_crossing("WD", arch_reg=index)
        return value

    def write_reg(self, index: int, value: int) -> None:
        e = self.e
        if index == 0:
            return
        # the destination was pre-allocated during rename
        e.rf.write(e.dest_phys, value)

    def load(self, addr: int, nbytes: int, signed: bool) -> int:
        e = self.e
        e.memory.check_access(addr, nbytes, write=False,
                              kernel_mode=e.ms.in_kernel)
        data, latency, tainted = e.l1d.read(addr, nbytes, e.probe)
        e.mem_latency = latency
        if tainted and e.crossing is None:
            e.record_crossing("WD", mem_addr=addr)
        e.pending_mem = ("load", addr, nbytes)
        value = int.from_bytes(data, "little")
        if signed and value & (1 << (8 * nbytes - 1)):
            value -= 1 << (8 * nbytes)
        return value

    def store(self, addr: int, nbytes: int, value: int) -> None:
        e = self.e
        e.memory.check_access(addr, nbytes, write=True,
                              kernel_mode=e.ms.in_kernel)
        old, latency, _ = e.l1d.read(addr, nbytes, e.probe)
        data = (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes,
                                                            "little")
        latency += e.l1d.write(addr, data, e.probe)
        e.mem_latency = latency
        e.pending_mem = ("store", addr, nbytes, value, old)


class PipelineEngine:
    """One end-to-end out-of-order execution, optionally with faults."""

    def __init__(self, image: SystemImage, config: MicroarchConfig,
                 faults=(), max_instructions: int = 2_000_000,
                 max_cycles: float = float("inf"),
                 collect_stats: bool = False,
                 tracer=None) -> None:
        if register_set(config.isa).xlen != register_set(image.isa).xlen:
            raise ValueError(
                f"config {config.name} is {config.isa} but program "
                f"is {image.isa}")
        self.image = image
        self.config = config
        self.memory = image.memory
        self.regs_meta = register_set(image.isa)
        xlen = self.regs_meta.xlen

        # --- microarchitectural state --------------------------------
        self.probe = TaintProbe()
        self.memport = MemoryPort(self.memory, config.dram_latency)
        self.l2 = Cache("L2", config.l2.size, config.l2.assoc,
                        config.l2.line_size, config.l2.latency,
                        self.memport)
        self.l1i = Cache("L1I", config.l1i.size, config.l1i.assoc,
                         config.l1i.line_size, config.l1i.latency,
                         self.l2)
        self.l1d = Cache("L1D", config.l1d.size, config.l1d.assoc,
                         config.l1d.line_size, config.l1d.latency,
                         self.l2)
        self.rf = PhysRegFile(config.n_phys_regs, self.regs_meta.count,
                              xlen)
        self.lsq = LoadStoreQueue(config.lsq_size, xlen)
        self.predictor = BranchPredictor(config.predictor_entries,
                                         config.btb_entries)

        # boot state
        self.ms = MachineState(xlen=xlen, pc=image.entry)
        sp_phys = self.rf.rename_map[self.regs_meta.stack_reg]
        self.rf.values[sp_phys] = image.initial_sp

        # --- timing state --------------------------------------------
        self.fetch_time = 0.0
        self.last_commit = 0.0
        self.reg_ready = [0.0] * config.n_phys_regs
        self.rob_commits: deque[float] = deque()
        self.iq_issues: deque[float] = deque()
        self.fu = {
            "alu": [0.0] * config.n_alu,
            "mul": [0.0] * config.n_mul,
            "div": [0.0] * config.n_div,
            "mem": [0.0] * config.n_mem_ports,
        }

        # --- fault machinery -----------------------------------------
        self.faults = sorted(faults, key=lambda f: f.cycle)
        self._next_fault = 0
        self.fault_applied = False
        self.fault_live = False
        self.crossing: Crossing | None = None
        #: optional repro.obs.tracing.FaultTracer; every hook guards
        #: with ``is not None`` so tracing costs nothing when off
        self.tracer = tracer

        # --- control -------------------------------------------------
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.instructions = 0
        self.kernel_instructions = 0
        self.collect_stats = collect_stats
        self._occ_samples = 0
        self._occ_sums = {"RF": 0.0, "LSQ": 0.0, "L1I": 0.0,
                          "L1D": 0.0, "L2": 0.0}

        self._core = _PipelineCore(self)
        self.dest_phys = -1
        self.src_vals: dict[int, int] = {}
        self.mem_latency = 0
        self.pending_mem: tuple | None = None
        #: optional ACE lifetime tracker (see repro.core.ace); when
        #: set, the engine reports write/read/release events for the
        #: register file, LSQ and D-cache lines.
        self.lifetime_tracker = None
        #: optional cosimulation hook (see repro.fuzz.oracle): called
        #: with the engine after every committed instruction; hoisted
        #: to a local in run() so a None probe costs nothing.
        self.arch_probe = None
        self._fetch_line = None
        self._fetch_line_base = -1
        self._fetch_line_tag = -1
        #: optional checkpoint hook (see repro.uarch.snapshot): an
        #: object with ``next_check`` (instruction count) and
        #: ``poll(engine)``; polled at the top of the run loop, and a
        #: non-None poll() return ends the run with that result.
        self.fastpath = None
        #: optional residency profiler (see repro.obs.profiles): an
        #: object with ``every`` (sampling stride in committed
        #: instructions) and ``sample(engine)``; read-only, so an
        #: attached profiler never perturbs simulation results.
        self.profiler = None

    # ------------------------------------------------------------------
    # crossing / fault bookkeeping
    # ------------------------------------------------------------------
    def record_crossing(self, fpm: str, arch_reg: int | None = None,
                        mem_addr: int | None = None) -> None:
        if self.crossing is None:
            self.crossing = Crossing(fpm, self.fetch_time,
                                     self.ms.in_kernel,
                                     arch_reg=arch_reg,
                                     mem_addr=mem_addr)
            if self.tracer is not None:
                self.tracer.crossed(self.fetch_time,
                                    self._crossing_detail(self.crossing))

    def _crossing_detail(self, crossing: Crossing) -> str:
        mode = "kernel" if crossing.in_kernel else "user"
        site = ""
        if crossing.arch_reg is not None:
            site = f" via {self.regs_meta.name(crossing.arch_reg)}"
        elif crossing.mem_addr is not None:
            site = f" via {crossing.mem_addr:#010x}"
        return f"{crossing.fpm} in {mode} mode{site}"

    def _apply_due_faults(self) -> None:
        while (self._next_fault < len(self.faults)
               and self.faults[self._next_fault].cycle <= self.fetch_time):
            spec = self.faults[self._next_fault]
            self._next_fault += 1
            self._apply_fault(spec)

    def _trace_landing(self, detail: str) -> None:
        if self.tracer is not None:
            state = "live" if self.fault_live else "dead"
            self.tracer.landed(self.fetch_time,
                               f"{detail} ({state} state)")

    def _apply_fault(self, spec) -> None:
        self.fault_applied = True
        structure = spec.structure
        n_bits = getattr(spec, "n_bits", 1)
        a, b, c = fold_coordinates(self, spec)
        if structure == "RF":
            phys = a
            if spec.prefer_live:
                live = [i for i in range(self.rf.n_phys)
                        if self.rf.state[i]]
                if not live:
                    self._trace_landing("RF: no live register")
                    return
                phys = live[a % len(live)]
            for k in range(n_bits):
                info = self.rf.flip_bit(phys,
                                        (b + k) % self.rf.xlen)
                self.fault_live = self.fault_live or info["live"]
            self._trace_landing(f"RF: physical register {phys}, "
                                f"bit {b % self.rf.xlen}")
            return
        if structure == "LSQ":
            self._apply_lsq_fault(spec, a, b)
            return
        cache = {"L1I": self.l1i, "L1D": self.l1d, "L2": self.l2}[structure]
        set_index, way = a, b
        if spec.prefer_live:
            live = [(s, w) for s, ways in enumerate(cache.sets)
                    for w, line in enumerate(ways) if line.valid]
            if not live:
                self._trace_landing(f"{structure}: no valid line")
                return
            set_index, way = live[(a * cache.assoc + b) % len(live)]
        if getattr(spec, "kind", "data") == "tag":
            for k in range(n_bits):
                info = cache.flip_tag_bit(
                    set_index, way, (c + k) % cache.tag_bits)
                self.fault_live = self.fault_live or info["live"]
        else:
            line_bits = cache.line_size * 8
            for k in range(n_bits):
                info = cache.flip_bit(set_index, way,
                                      (c + k) % line_bits)
                self.fault_live = self.fault_live or info["live"]
        self._trace_landing(
            f"{structure}: set {set_index}, way {way}, "
            f"{'tag' if getattr(spec, 'kind', 'data') == 'tag' else 'line'}"
            f" bit {c}")
        if self.fault_live:
            # invalidate the fetch fast path if we hit its line
            self._fetch_line_base = -1

    def _apply_lsq_fault(self, spec, index: int, bit: int) -> None:
        if spec.prefer_live:
            live = [i for i, e in enumerate(self.lsq.entries) if e.valid]
            if not live:
                return
            index = live[index % len(live)]
        entry, fld, bit = self.lsq.flip_target(index, bit)
        if not entry.valid or entry.commit_cycle <= self.fetch_time:
            self._trace_landing(f"LSQ: entry {index} ({fld} field)")
            return  # dead slot: hardware-masked
        self.fault_live = True
        self._trace_landing(
            f"LSQ: entry {index}, {fld} field, bit {bit} "
            f"({'store' if entry.is_store else 'load'} "
            f"@ {entry.addr:#010x})")
        n_bits = getattr(spec, "n_bits", 1)
        if fld == "data":
            for k in range(n_bits):
                self._flip_lsq_data_bit(entry, bit + k)
        else:  # address field
            mask = 0
            for k in range(n_bits):
                mask |= 1 << ((bit + k) % 32)
            flipped = (entry.addr ^ mask) & 0xFFFF_FFFF
            self._replay_with_address(entry, flipped)

    def _flip_lsq_data_bit(self, entry, bit: int) -> None:
        if entry.is_store:
            # corrupt the stored bytes in place (they were written
            # eagerly); the corruption is architecturally visible
            # when the store commits.
            byte_index, bit_in_byte = divmod(bit, 8)
            if byte_index < entry.nbytes:
                addr = entry.addr + byte_index
                current, _, _ = self.l1d.read(addr, 1, self.probe)
                self.l1d.write(addr, bytes([current[0]
                                            ^ (1 << bit_in_byte)]),
                               self.probe)
                self._taint_line(addr)
                self.record_crossing("WD", mem_addr=addr)
        else:
            # corrupt the load's destination register if still live
            if entry.dest_phys >= 0 \
                    and self.rf.state[entry.dest_phys]:
                self.rf.values[entry.dest_phys] ^= \
                    1 << (bit % self.rf.xlen)
                self.rf.tainted.add(entry.dest_phys)

    def _taint_line(self, addr: int) -> None:
        index, tag = self.l1d._index_tag(addr)
        line = self.l1d._find(index, tag)
        if line is not None:
            if line.taint is None:
                line.taint = set()
            line.taint.add(addr - self.l1d.line_base(index, tag))

    def _replay_with_address(self, entry, flipped: int) -> None:
        """Retroactively move an in-flight memory op to a flipped address."""
        region = self.memory.region_of(flipped)
        self.record_crossing("WD", mem_addr=flipped)
        if entry.is_store:
            # undo the original store, redo at the corrupted address
            self.l1d.write(entry.addr, entry.old_data, self.probe)
            self._taint_line(entry.addr)
            if region is None or (region.kernel_only
                                  and not entry.in_kernel):
                raise SimException(FaultKind.ACCESS_FAULT, flipped,
                                   detail="lsq address corruption",
                                   in_kernel=entry.in_kernel)
            data = (entry.data
                    & ((1 << (8 * entry.nbytes)) - 1)).to_bytes(
                        entry.nbytes, "little")
            self.l1d.write(flipped, data, self.probe)
            self._taint_line(flipped)
            entry.addr = flipped
        else:
            if region is None or (region.kernel_only
                                  and not entry.in_kernel):
                raise SimException(FaultKind.ACCESS_FAULT, flipped,
                                   detail="lsq address corruption",
                                   in_kernel=entry.in_kernel)
            if entry.dest_phys >= 0 and self.rf.state[entry.dest_phys]:
                data, _, _ = self.l1d.read(flipped, entry.nbytes,
                                           self.probe)
                value = int.from_bytes(data, "little")
                self.rf.values[entry.dest_phys] = value & self.rf.mask
                self.rf.tainted.add(entry.dest_phys)

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------
    def _fetch(self) -> tuple[Decoded, float]:
        """Fetch + decode at the current PC; returns (instr, extra_lat)."""
        ms = self.ms
        pc = ms.pc
        if pc & 3:
            raise SimException(FaultKind.MISALIGNED, pc, detail="pc",
                               in_kernel=ms.in_kernel)
        addr = pc & 0xFFFF_FFFF
        region = self.memory.region_of(addr)
        if region is None:
            raise SimException(FaultKind.FETCH_FAULT, addr,
                               in_kernel=ms.in_kernel)
        if region.kernel_only and not ms.in_kernel:
            raise SimException(FaultKind.PRIVILEGE_FAULT, addr,
                               detail="fetch", in_kernel=False)

        line_size = self.l1i.line_size
        base = addr & ~(line_size - 1)
        extra = 0.0
        line = self._fetch_line
        if (base != self._fetch_line_base or line is None
                or not line.valid or line.tag != self._fetch_line_tag):
            # slow path: go through the I-cache
            _, latency, _ = self.l1i.read(addr, 4, self.probe)
            if latency > self.l1i.hit_latency:
                extra = latency - self.l1i.hit_latency
            index, tag = self.l1i._index_tag(addr)
            line = self.l1i._find(index, tag)
            self._fetch_line = line
            self._fetch_line_base = base
            self._fetch_line_tag = tag

        off = addr - base
        word = int.from_bytes(line.data[off:off + 4], "little")
        if line.taint and any(off <= t < off + 4 for t in line.taint):
            self._classify_fetch_corruption(addr, word)
        try:
            return cached_decode(word, self.regs_meta), extra
        except DecodeError:
            raise SimException(FaultKind.ILLEGAL_INSTRUCTION, pc,
                               in_kernel=ms.in_kernel) from None

    def _classify_fetch_corruption(self, addr: int, word: int) -> None:
        if self.crossing is not None:
            return
        pristine = self.image.pristine_word(addr)
        if pristine is None or pristine == word:
            # corrupted line holds data being executed, or the flip
            # cancelled out — treat as wrong instruction stream
            if pristine != word:
                self.record_crossing("WI", mem_addr=addr)
            return
        from ..faults.fpm import classify_instruction_corruption
        self.record_crossing(
            classify_instruction_corruption(pristine, word).value,
            mem_addr=addr)

    # ------------------------------------------------------------------
    # per-instruction register usage
    # ------------------------------------------------------------------
    @staticmethod
    def _sources(instr: Decoded) -> tuple[int, int]:
        """(rs1, rs2) architectural sources; 0 means none/zero-reg."""
        fmt = instr.d.fmt
        if fmt in ("R", "S", "B"):
            return instr.rs1, instr.rs2
        if fmt in ("I", "RJ"):
            return instr.rs1, 0
        return 0, 0

    def _dest(self, instr: Decoded) -> int:
        """Architectural destination register, 0 if none."""
        fmt = instr.d.fmt
        if fmt in ("R", "I", "U"):
            return instr.rd
        if instr.op == "jalr":
            return instr.rd
        if instr.op == "jal":
            return (_LINK32 if self.regs_meta.xlen == 32 else _LINK64)
        return 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        from ..obs.metrics import get_registry

        registry = get_registry()
        wall_started = (time.perf_counter() if registry.enabled
                        else 0.0)
        config = self.config
        ms = self.ms
        inv_fetch = 1.0 / config.fetch_width
        inv_commit = 1.0 / config.commit_width
        depth = float(config.frontend_depth)
        penalty = float(config.penalty)
        rob_size = config.rob_size
        iq_size = config.iq_size
        latencies = {"alu": float(config.alu_latency),
                     "mul": float(config.mul_latency),
                     "div": float(config.div_latency),
                     "load": 1.0, "store": 1.0, "branch": 1.0,
                     "sys": 1.0}
        status = RunStatus.COMPLETED
        fault_kind: FaultKind | None = None
        fault_in_kernel = False
        have_faults = bool(self.faults)
        arch_probe = self.arch_probe
        fastpath = self.fastpath
        profiler = self.profiler
        profile_every = profiler.every if profiler is not None else 0

        try:
            while not ms.halted:
                if fastpath is not None \
                        and self.instructions >= fastpath.next_check:
                    early = fastpath.poll(self)
                    if early is not None:
                        if registry.enabled:
                            self._record_metrics(
                                registry,
                                time.perf_counter() - wall_started)
                        return early
                if self.instructions >= self.max_instructions \
                        or self.fetch_time > self.max_cycles:
                    status = RunStatus.TIMEOUT
                    break
                if have_faults and self._next_fault < len(self.faults):
                    self._apply_due_faults()

                # ---- fetch ------------------------------------------
                fetch = self.fetch_time + inv_fetch
                if len(self.rob_commits) >= rob_size:
                    fetch = max(fetch, self.rob_commits[0])
                if len(self.iq_issues) >= iq_size:
                    fetch = max(fetch, self.iq_issues[0])
                self.fetch_time = fetch
                pc = ms.pc
                instr, icache_extra = self._fetch()
                fetch += icache_extra
                self.fetch_time = fetch

                # ---- rename / dispatch ------------------------------
                dispatch = fetch + depth
                rs1, rs2 = self._sources(instr)
                ready = dispatch
                self.src_vals.clear()
                tracker = self.lifetime_tracker
                tainted_src = 0
                if rs1:
                    value, phys = self.rf.read(rs1)
                    self.src_vals[rs1] = value
                    ready = max(ready, self.reg_ready[phys])
                    if phys in self.rf.tainted:
                        tainted_src = rs1
                    if tracker is not None:
                        tracker.reg_read(phys, ready)
                if rs2:
                    value, phys = self.rf.read(rs2)
                    self.src_vals.setdefault(rs2, value)
                    ready = max(ready, self.reg_ready[phys])
                    if not tainted_src and phys in self.rf.tainted:
                        tainted_src = rs2
                    if tracker is not None:
                        tracker.reg_read(phys, ready)
                if tainted_src:
                    self.record_crossing("WD", arch_reg=tainted_src)
                dest_arch = self._dest(instr)
                if dest_arch:
                    # writer_commit patched after commit is known (the
                    # entry just appended is at the deque's tail)
                    self.dest_phys, stall = self.rf.allocate(
                        dest_arch, dispatch, float("inf"))
                    has_pending = True
                    dispatch = max(dispatch, stall)
                    ready = max(ready, dispatch)
                else:
                    has_pending = False
                    self.dest_phys = -1

                cls = instr.d.cls
                lsq_entry = None
                if cls in ("load", "store"):
                    lsq_entry, stall = self.lsq.allocate(dispatch)
                    dispatch = max(dispatch, stall)
                    ready = max(ready, dispatch)

                # ---- execute (functional, eager) ---------------------
                self.mem_latency = 0
                self.pending_mem = None
                next_pc = execute(instr, ms, self._core)

                # ---- issue / complete timing -------------------------
                fu_pool = self.fu["mem"] if cls in ("load", "store") \
                    else self.fu.get(cls, self.fu["alu"])
                unit = min(range(len(fu_pool)), key=fu_pool.__getitem__)
                start = max(ready, fu_pool[unit])
                if cls == "div":
                    fu_pool[unit] = start + latencies["div"]
                else:
                    fu_pool[unit] = start + 1.0
                latency = latencies.get(cls, 1.0)
                if cls == "load":
                    latency = 1.0 + self.mem_latency
                complete = start + latency

                # ---- commit -----------------------------------------
                commit = max(complete + 1.0,
                             self.last_commit + inv_commit)
                self.last_commit = commit
                self.rob_commits.append(commit)
                if len(self.rob_commits) > rob_size:
                    self.rob_commits.popleft()
                self.iq_issues.append(start)
                if len(self.iq_issues) > iq_size:
                    self.iq_issues.popleft()

                if self.dest_phys >= 0:
                    self.reg_ready[self.dest_phys] = complete
                    if has_pending and self.rf.pending_free:
                        # patch the reclamation cycle of the old mapping
                        old = self.rf.pending_free[-1][1]
                        self.rf.pending_free[-1] = (commit, old)
                        if self.lifetime_tracker is not None:
                            self.lifetime_tracker.reg_write(
                                self.dest_phys, complete)
                            self.lifetime_tracker.reg_release(old,
                                                              commit)
                if lsq_entry is not None:
                    mem = self.pending_mem
                    if mem is not None and self.lifetime_tracker \
                            is not None:
                        self.lifetime_tracker.mem_access(
                            mem[1], mem[2], mem[0] == "store", start)
                        self.lifetime_tracker.lsq_op(dispatch, commit)
                    if mem is not None:
                        lsq_entry.is_store = mem[0] == "store"
                        lsq_entry.addr = mem[1]
                        lsq_entry.nbytes = mem[2]
                        if lsq_entry.is_store:
                            lsq_entry.data = mem[3]
                            lsq_entry.old_data = mem[4]
                            lsq_entry.dest_phys = -1
                        else:
                            lsq_entry.data = 0
                            lsq_entry.dest_phys = self.dest_phys
                        lsq_entry.alloc_cycle = dispatch
                        lsq_entry.commit_cycle = commit
                        lsq_entry.in_kernel = ms.in_kernel
                    else:
                        # the op faulted before reaching memory
                        lsq_entry.valid = False
                        self.lsq.valid_count -= 1

                # ---- control flow ------------------------------------
                if cls == "branch":
                    taken = next_pc != pc + 4
                    mispredicted = self.predictor.update(pc, taken,
                                                         next_pc)
                    if mispredicted:
                        self.fetch_time = max(self.fetch_time,
                                              complete + penalty)
                elif cls == "sys":
                    # syscall / eret serialise the frontend
                    self.fetch_time = max(self.fetch_time,
                                          commit + penalty)
                ms.pc = next_pc

                # ---- bookkeeping -------------------------------------
                self.instructions += 1
                if ms.in_kernel:
                    self.kernel_instructions += 1
                if arch_probe is not None:
                    arch_probe(self)
                if profile_every and not self.instructions % profile_every:
                    profiler.sample(self)
                if self.collect_stats and not self.instructions % 64:
                    self._sample_occupancy()
        except SimException as exc:
            status = RunStatus.SIM_EXCEPTION
            fault_kind = exc.kind
            fault_in_kernel = exc.in_kernel or ms.in_kernel
        except DetectTrap:
            status = RunStatus.DETECTED
        except ContainmentError:
            raise
        except Exception as exc:
            # Containment contract: a fault must never surface as a
            # host-level Python error.  Anything that does is a
            # simulator bug; wrap it with the coordinates needed to
            # replay it deterministically.
            raise ContainmentError(
                f"fault escaped the timing model as "
                f"{type(exc).__name__}: {exc}",
                context={
                    "engine": "pipeline",
                    "error": f"{type(exc).__name__}: {exc}",
                    "pc": ms.pc,
                    "instructions": self.instructions,
                    "cycle": round(self.fetch_time, 3),
                }) from exc

        output, exit_code = self._drain_output()
        if registry.enabled:
            self._record_metrics(registry,
                                 time.perf_counter() - wall_started)
        return PipelineResult(
            status=status,
            output=output,
            exit_code=exit_code,
            cycles=self.last_commit,
            instructions=self.instructions,
            kernel_instructions=self.kernel_instructions,
            fault_applied=self.fault_applied,
            fault_live=self.fault_live,
            crossing=self.crossing,
            fault_kind=fault_kind,
            fault_in_kernel=fault_in_kernel,
            occupancy=self._occupancy_averages(),
            stats=self._final_stats(),
        )

    # ------------------------------------------------------------------
    # DMA drain: coherent, pipeline-bypassing output collection
    # ------------------------------------------------------------------
    def coherent_read(self, addr: int, nbytes: int) -> bytes:
        """Read memory the way a snooping DMA engine would.

        Checks the L1D, then the L2, then main memory — per line
        segment — without going through the pipeline.  Corrupt cached
        output data therefore reaches the program output without any
        architectural crossing: the ESC channel.
        """
        out = bytearray()
        line = self.l1d.line_size
        while nbytes:
            seg = min(nbytes, line - (addr % line))
            data = self.l1d.snoop(addr, seg)
            if data is None:
                data = self.l2.snoop(addr, seg)
            if data is None:
                data = self.memory.read(addr, seg)
            out.extend(data)
            addr += seg
            nbytes -= seg
        return bytes(out)

    def _drain_output(self) -> tuple[bytes, int]:
        out_len = int.from_bytes(
            self.coherent_read(layout.OUTPUT_LEN_ADDR, 4), "little")
        out_len = min(out_len, layout.OUTPUT_LIMIT - layout.OUTPUT_BASE)
        output = self.coherent_read(layout.OUTPUT_BASE, out_len)
        exit_code = int.from_bytes(
            self.coherent_read(layout.KERNEL_DATA_BASE
                               + EXIT_CODE_OFFSET, 4), "little")
        return output, exit_code

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _sample_occupancy(self) -> None:
        # reclaim state that has logically committed by now, else the
        # samples overstate occupancy by the reclamation laziness
        self.lsq.reclaim(self.fetch_time)
        self.rf._reclaim(self.fetch_time)
        self._occ_samples += 1
        self._occ_sums["RF"] += self.rf.occupancy()
        self._occ_sums["LSQ"] += self.lsq.occupancy()
        self._occ_sums["L1I"] += self.l1i.occupancy()
        self._occ_sums["L1D"] += self.l1d.occupancy()
        self._occ_sums["L2"] += self.l2.occupancy()

    def _occupancy_averages(self) -> dict:
        if not self._occ_samples:
            return {}
        return {k: v / self._occ_samples
                for k, v in self._occ_sums.items()}

    def _final_stats(self) -> dict:
        if not self.collect_stats:
            return {}
        return {
            "l1i": self.l1i.stats(),
            "l1d": self.l1d.stats(),
            "l2": self.l2.stats(),
            "branch": self.predictor.stats(),
        }

    def _record_metrics(self, registry, wall: float) -> None:
        """Fold this execution into the process-wide metrics registry.

        Runs once per execution (never in the instruction loop), so
        the pipeline's hot path carries no metric calls at all.
        """
        registry.counter("pipeline.runs").inc()
        registry.counter("pipeline.instructions").inc(self.instructions)
        registry.timer("pipeline.wall_seconds").add(wall)
        if wall > 0:
            registry.gauge("pipeline.sim_cycles_per_sec").set(
                self.last_commit / wall)
        branch = self.predictor.stats()
        registry.counter("pipeline.squashes").inc(branch["mispredicts"])
        for name, cache in (("l1i", self.l1i), ("l1d", self.l1d),
                            ("l2", self.l2)):
            stats = cache.stats()
            registry.counter(f"pipeline.{name}.hits").inc(stats["hits"])
            registry.counter(f"pipeline.{name}.misses").inc(
                stats["misses"])
            lookups = stats["hits"] + stats["misses"]
            if lookups:
                registry.gauge(f"pipeline.{name}.hit_rate").set(
                    stats["hits"] / lookups)


def run_pipeline(user_program, config: MicroarchConfig, faults=(),
                 max_instructions: int = 2_000_000,
                 max_cycles: float = float("inf"),
                 collect_stats: bool = False) -> PipelineResult:
    """Build a fresh system image and run it through the pipeline."""
    from ..kernel.loader import build_system_image

    image = build_system_image(user_program)
    engine = PipelineEngine(image, config, faults=faults,
                            max_instructions=max_instructions,
                            max_cycles=max_cycles,
                            collect_stats=collect_stats)
    return engine.run()
