"""Load/store queue model.

Entries hold the *address* and *data* of in-flight memory operations
(allocated at dispatch, reclaimed at commit).  The LSQ is one of the
paper's five injection targets; each entry exposes a 32-bit address
field plus an XLEN-wide data field to the fault sampler.

Because the engine executes memory operations eagerly while computing
out-of-order timing, a fault landing in a still-in-flight entry is
applied *retroactively* through compensation:

* load/data   — the loaded value in the destination register is
  corrupted (if the register is still live);
* load/addr   — the load is replayed from the flipped address;
* store/data  — the stored byte is corrupted in place in the D-cache;
* store/addr  — the store is undone at the original address (old bytes
  were captured) and redone at the flipped address.

Entries whose operation has already committed are dead state: flips
there are hardware-masked, as on a real core.
"""

from __future__ import annotations


class LSQEntry:
    __slots__ = ("valid", "is_store", "addr", "data", "nbytes",
                 "old_data", "dest_phys", "alloc_cycle", "commit_cycle",
                 "in_kernel")

    def __init__(self) -> None:
        self.valid = False
        self.is_store = False
        self.addr = 0
        self.data = 0
        self.nbytes = 0
        self.old_data = b""
        self.dest_phys = -1
        self.alloc_cycle = 0.0
        self.commit_cycle = 0.0
        self.in_kernel = False


class LoadStoreQueue:
    """Circular queue of :class:`LSQEntry`."""

    def __init__(self, size: int, xlen: int) -> None:
        self.size = size
        self.xlen = xlen
        self.entries = [LSQEntry() for _ in range(size)]
        self._next = 0
        self.valid_count = 0

    @property
    def entry_bits(self) -> int:
        return 32 + self.xlen

    @property
    def bits(self) -> int:
        return self.size * self.entry_bits

    def reclaim(self, now: float) -> None:
        """Invalidate entries whose operation has committed."""
        for entry in self.entries:
            if entry.valid and entry.commit_cycle <= now:
                entry.valid = False
                self.valid_count -= 1

    def allocate(self, now: float) -> tuple[LSQEntry, float]:
        """Allocate the next entry, stalling while the queue is full.

        Returns ``(entry, stall_until)``.
        """
        self.reclaim(now)
        stall_until = now
        if self.valid_count >= self.size:
            # wait for the oldest in-flight op to commit
            oldest = min(e.commit_cycle for e in self.entries if e.valid)
            stall_until = max(stall_until, oldest)
            self.reclaim(stall_until)
        entry = self.entries[self._next]
        if entry.valid:
            # ring slot still busy: find any free slot (reclaim above
            # guarantees one exists)
            entry = next(e for e in self.entries if not e.valid)
        self._next = (self._next + 1) % self.size
        entry.valid = True
        self.valid_count += 1
        return entry, stall_until

    def occupancy(self) -> float:
        return self.valid_count / self.size

    def flip_target(self, index: int, bit: int) -> tuple[LSQEntry, str, int]:
        """Resolve a (entry, field, field_bit) injection coordinate.

        ``bit`` indexes the concatenation [addr(32) | data(xlen)].
        """
        entry = self.entries[index]
        if bit < 32:
            return entry, "addr", bit
        return entry, "data", bit - 32
