"""Simulated-machine exceptions.

These are *architectural events of the simulated CPU*, not Python
errors: the simulator catches them and maps them onto the paper's
fault-effect taxonomy (a fault raised in user mode is a process crash;
one raised in kernel mode is a kernel panic — see
:mod:`repro.faults.outcomes`).
"""

from __future__ import annotations

from enum import Enum


class FaultKind(str, Enum):
    """Architectural exception causes."""

    ILLEGAL_INSTRUCTION = "illegal-instruction"
    ACCESS_FAULT = "access-fault"          # unmapped / out-of-range address
    PRIVILEGE_FAULT = "privilege-fault"    # user touched kernel space
    MISALIGNED = "misaligned-access"
    DIVISION_BY_ZERO = "division-by-zero"
    FETCH_FAULT = "fetch-fault"            # PC escaped the code image


class SimException(Exception):
    """An architectural exception raised during simulated execution.

    Attributes
    ----------
    kind:
        The architectural cause.
    addr:
        Faulting address (memory faults) or PC (others), if known.
    in_kernel:
        Whether the machine was in kernel mode when the exception was
        raised.  Filled in by the execution engine at catch time when
        the raise site does not know.
    """

    def __init__(self, kind: FaultKind, addr: int | None = None,
                 detail: str = "", in_kernel: bool = False) -> None:
        where = f" @ {addr:#x}" if addr is not None else ""
        extra = f" ({detail})" if detail else ""
        super().__init__(f"{kind.value}{where}{extra}")
        self.kind = kind
        self.addr = addr
        self.detail = detail
        self.in_kernel = in_kernel


class DetectTrap(Exception):
    """Raised when a hardened program executes the ``detect`` trap.

    The software-based fault-tolerance transform inserts consistency
    checks that execute ``detect`` on mismatch; the outcome of such a
    run is *Detected* (the paper excludes detected faults from the
    vulnerability of the hardened binary, because a detected fault is
    recoverable by re-execution).
    """
