"""Simulated-machine exceptions.

These are *architectural events of the simulated CPU*, not Python
errors: the simulator catches them and maps them onto the paper's
fault-effect taxonomy (a fault raised in user mode is a process crash;
one raised in kernel mode is a kernel panic — see
:mod:`repro.faults.outcomes`).
"""

from __future__ import annotations

from enum import Enum


class FaultKind(str, Enum):
    """Architectural exception causes."""

    ILLEGAL_INSTRUCTION = "illegal-instruction"
    ACCESS_FAULT = "access-fault"          # unmapped / out-of-range address
    PRIVILEGE_FAULT = "privilege-fault"    # user touched kernel space
    MISALIGNED = "misaligned-access"
    DIVISION_BY_ZERO = "division-by-zero"
    FETCH_FAULT = "fetch-fault"            # PC escaped the code image


class SimException(Exception):
    """An architectural exception raised during simulated execution.

    Attributes
    ----------
    kind:
        The architectural cause.
    addr:
        Faulting address (memory faults) or PC (others), if known.
    in_kernel:
        Whether the machine was in kernel mode when the exception was
        raised.  Filled in by the execution engine at catch time when
        the raise site does not know.
    """

    def __init__(self, kind: FaultKind, addr: int | None = None,
                 detail: str = "", in_kernel: bool = False) -> None:
        where = f" @ {addr:#x}" if addr is not None else ""
        extra = f" ({detail})" if detail else ""
        super().__init__(f"{kind.value}{where}{extra}")
        self.kind = kind
        self.addr = addr
        self.detail = detail
        self.in_kernel = in_kernel


class ContainmentError(Exception):
    """A fault escaped the simulator as a host-level Python error.

    The containment contract says: any single-bit flip in any
    injectable structure, at any cycle, in any workload must terminate
    in a classified :class:`repro.faults.outcomes.Verdict`.  The
    simulation engines enforce it by converting every non-simulated
    exception that escapes their run loop into this error, carrying
    the exact flip coordinates so the failure is replayable
    (``repro fuzz --replay``).

    ``context`` accumulates coordinates as the error propagates
    outward: the engine records where execution stood (pc, instruction
    count, cycle, original error), the injector adds the fault spec
    (workload, structure, bit coordinates, inject cycle) and the
    campaign layer adds ``(seed, index)``.  Inner context wins —
    :meth:`with_context` only fills keys that are still absent.

    Unlike :class:`SimException` this is *not* an architectural event:
    it means the simulator itself failed to contain the flip, which is
    a deterministic bug.  The campaign engine therefore fails fast on
    it (no retry — see :mod:`repro.injectors.engine`).
    """

    def __init__(self, message: str, context: dict | None = None) -> None:
        super().__init__(message)
        self.context: dict = dict(context or {})

    def with_context(self, **fields) -> "ContainmentError":
        """Annotate with outer-layer coordinates; existing keys win."""
        for key, value in fields.items():
            self.context.setdefault(key, value)
        return self

    def __reduce__(self):
        # keep the context across process-pool pickling
        return (type(self), (self.args[0], self.context))

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        coords = ", ".join(f"{k}={v!r}"
                           for k, v in sorted(self.context.items()))
        return f"{base} [{coords}]"


class DetectTrap(Exception):
    """Raised when a hardened program executes the ``detect`` trap.

    The software-based fault-tolerance transform inserts consistency
    checks that execute ``detect`` on mismatch; the outcome of such a
    run is *Detected* (the paper excludes detected faults from the
    vulnerability of the hardened binary, because a detected fault is
    recoverable by re-execution).
    """
