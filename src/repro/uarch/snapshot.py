"""Checkpoint/restore fast path for injection campaigns.

Every injection run is, by construction, identical to the golden run
up to the injection point; re-simulating that prefix is the dominant
campaign cost (the redundancy fork-at-injection tools like ZOFI
eliminate).  This module implements the golden-fork equivalent for
deterministic simulators:

* **capture/restore** — complete simulator state of either engine
  (pipeline structures, renamed register file, LSQ, caches, branch
  predictor, timing state, and memory via copy-on-write pages) can be
  captured at an instruction boundary and restored into a fresh
  engine, after which execution is bit-identical to an uninterrupted
  run;

* **checkpoint stores** — a fault-free *capture run* records a
  checkpoint every ``interval`` instructions (plus a canonical state
  digest per boundary and the final result).  Injectors restore the
  nearest checkpoint at-or-before the injection point instead of
  simulating from reset (:func:`prepare_pipeline_fastpath` /
  :func:`prepare_functional_fastpath`);

* **early Masked termination** — after every scheduled fault has been
  applied, the engine compares its canonical digest against the golden
  digest at each boundary.  The digest covers *all* state that can
  influence future behaviour or the final result (including timing
  state and instruction counters) and refuses to match while any
  taint survives anywhere, so an early exit is only declared once the
  run has provably reconverged onto the golden trajectory — the
  remainder of the run is then synthesised from the capture run's own
  final result, byte-identical to running it out.  This guard is what
  keeps WOI/ESC semantics and FPM classification unchanged: a fault
  whose corruption still lingers (in a register, a cache line, the
  LSQ, or main memory — the ESC channel) can never exit early.

Correctness invariants the digest relies on:

* pipeline faults fire at the first top-of-loop where
  ``spec.cycle <= fetch_time`` and ``fetch_time`` is strictly
  increasing, so restoring any boundary with ``cycle <= spec.cycle``
  preserves the firing point exactly;
* dead state is excluded from the digest precisely where the engines
  never read it back: FREE physical registers (always rewritten
  before becoming readable), invalid cache lines/LSQ slots (fills and
  allocations overwrite them), replacement metadata of invalid lines;
* the fetch fast-path line reference is digested (and restored) as
  its *effective* key — ``(-1, -1)`` whenever the cached line no
  longer satisfies the fetch's coherence check, which is exactly the
  condition under which the reference is unreachable.

The fast path is controlled by ``REPRO_FASTPATH`` (truthy default)
and the ``--no-fastpath`` CLI escape hatch; checkpoint density by
``REPRO_CHECKPOINT_EVERY``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.metrics import (FASTPATH_CYCLES_SKIPPED,
                           FASTPATH_EARLY_EXITS,
                           FASTPATH_INSTRUCTIONS_SAVED,
                           FASTPATH_INSTRUCTIONS_SKIPPED,
                           FASTPATH_RESTORES, get_registry)
from .cache import Cache, Line
from .functional import FaultAction, FuncResult, FunctionalEngine, RunStatus
from .pipeline import PipelineEngine, PipelineResult

#: bump on any change to the capture format or digest definition;
#: invalidates every on-disk checkpoint store
SNAPSHOT_SCHEMA_VERSION = 1

#: default number of checkpoints per capture run
TARGET_CHECKPOINTS = 16

_FALSY = {"0", "false", "no", "off", ""}


def fastpath_enabled(explicit: "bool | None" = None) -> bool:
    """Resolve the fast-path switch: explicit flag > ``REPRO_FASTPATH``
    environment variable > on by default."""
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get("REPRO_FASTPATH")
    if env is None:
        return True
    return env.strip().lower() not in _FALSY


def checkpoint_interval(total_instructions: int) -> int:
    """Checkpoint spacing in instructions for a run of the given size
    (``REPRO_CHECKPOINT_EVERY`` overrides)."""
    env = os.environ.get("REPRO_CHECKPOINT_EVERY")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(64, total_instructions // TARGET_CHECKPOINTS)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------
@dataclass
class Checkpoint:
    """One captured boundary of a fault-free run."""

    instructions: int            # boundary position (retired instructions)
    cycle: float                 # pipeline fetch_time (0.0 for functional)
    counters: dict               # functional trigger counters at capture
    digest: str                  # canonical state digest at this boundary
    state: dict                  # engine-specific captured state


@dataclass
class CheckpointStore:
    """All checkpoints of one (workload, config, engine-kind) capture."""

    schema: int
    engine: str                  # "pipeline"|"functional-sim"|"functional-host"
    key: str                     # cache key the store was built under
    interval: int
    checkpoints: list = field(default_factory=list)
    #: boundary instruction count -> golden digest (early-exit oracle)
    digests: dict = field(default_factory=dict)
    #: final-result fields of the capture run (synthesised on early exit)
    final: dict = field(default_factory=dict)

    def nearest_for_cycle(self, cycle: float) -> Checkpoint:
        """Latest checkpoint captured at-or-before *cycle* (always at
        least the initial-state checkpoint)."""
        best = self.checkpoints[0]
        for cp in self.checkpoints:
            if cp.cycle <= cycle:
                best = cp
            else:
                break
        return best

    def nearest_for_counter(self, kind: str, when: int) -> Checkpoint:
        """Latest checkpoint whose *kind* trigger counter had not yet
        passed *when* (so the scheduled action still fires)."""
        best = self.checkpoints[0]
        for cp in self.checkpoints:
            if cp.counters.get(kind, 0) <= when:
                best = cp
            else:
                break
        return best


# ---------------------------------------------------------------------------
# canonical digests
# ---------------------------------------------------------------------------
def _fetch_key(engine: PipelineEngine) -> tuple:
    """Effective fetch fast-path key: the cached line reference only
    matters while it satisfies the fetch coherence check."""
    line = engine._fetch_line
    if line is not None and line.valid \
            and line.tag == engine._fetch_line_tag:
        return engine._fetch_line_base, engine._fetch_line_tag
    return -1, -1


def _digest_memory(memory, update) -> None:
    for base, page in memory.iter_pages():
        if not any(page):
            continue  # all-zero pages equal never-touched pages
        update(repr(("page", base)).encode())
        update(bytes(page))


def _digest_cache(cache: Cache, update) -> bool:
    """Digest one cache level; False when any line is tainted."""
    for index, ways in enumerate(cache.sets):
        if not ways:
            continue
        shape = []
        for line in ways:
            if not line.valid:
                shape.append(None)  # slot position matters, content dead
                continue
            if line.taint:
                return False
            shape.append((line.tag, line.dirty, line.lru))
        update(repr((cache.name, index, shape)).encode())
        for line in ways:
            if line.valid:
                update(bytes(line.data))
    update(repr((cache.name, "tick", cache._tick)).encode())
    return True


def pipeline_digest(engine: PipelineEngine) -> "str | None":
    """Canonical digest of everything that determines the run's future
    (and its result counters); None while corrupted state survives."""
    rf = engine.rf
    if rf.tainted or engine.probe.mem_taint:
        return None
    h = hashlib.sha256()
    u = h.update
    ms = engine.ms
    u(repr(("ms", ms.pc, ms.mode, ms.kepc, ms.halted,
            ms.exit_code)).encode())
    state = rf.state
    values = rf.values
    ready = engine.reg_ready
    # FREE slots are dead state: unreadable until re-allocated, and
    # every allocation's value/readiness is written before any read
    u(repr(("rf",
            [values[p] if state[p] else None
             for p in range(rf.n_phys)],
            [ready[p] if state[p] else None
             for p in range(rf.n_phys)],
            rf.rename_map, list(rf.free_list),
            list(rf.pending_free), rf.live_count)).encode())
    lsq = engine.lsq
    entries = []
    for e in lsq.entries:
        if e.valid:
            entries.append((e.is_store, e.addr, e.data, e.nbytes,
                            bytes(e.old_data), e.dest_phys,
                            e.alloc_cycle, e.commit_cycle, e.in_kernel))
        else:
            entries.append(None)
    u(repr(("lsq", entries, lsq._next, lsq.valid_count)).encode())
    for cache in (engine.l2, engine.l1i, engine.l1d):
        if not _digest_cache(cache, u):
            return None
    pred = engine.predictor
    u(repr(("pred", pred.counters, pred.btb)).encode())
    u(repr(("timing", engine.fetch_time, engine.last_commit,
            list(engine.rob_commits), list(engine.iq_issues),
            sorted((k, v) for k, v in engine.fu.items()))).encode())
    u(repr(("counts", engine.instructions,
            engine.kernel_instructions)).encode())
    u(repr(("fetch", _fetch_key(engine))).encode())
    _digest_memory(engine.memory, u)
    return h.hexdigest()


def functional_digest(engine: FunctionalEngine) -> str:
    """Canonical digest of a functional engine's complete state."""
    h = hashlib.sha256()
    u = h.update
    ms = engine.ms
    u(repr(("ms", ms.pc, ms.mode, ms.kepc, ms.halted,
            ms.exit_code)).encode())
    u(repr(("regs", engine.regs)).encode())
    u(b"host-output")
    u(bytes(engine._host_output))
    _digest_memory(engine.memory, u)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# capture / restore: pipeline
# ---------------------------------------------------------------------------
def _intern_bytes(value: bytes, intern: "dict | None") -> bytes:
    if intern is None:
        return value
    return intern.setdefault(value, value)


def capture_pipeline(engine: PipelineEngine,
                     intern: "dict | None" = None) -> dict:
    """Capture complete pipeline state at a top-of-loop boundary.

    *intern* (optional) dedups identical byte blobs (pages, cache
    lines) across the checkpoints of one store.
    """
    ms = engine.ms
    rf = engine.rf
    lsq = engine.lsq
    pages = {base: _intern_bytes(data, intern)
             for base, data in engine.memory.snapshot_pages().items()}
    caches = {}
    for name in ("l2", "l1i", "l1d"):
        cache: Cache = getattr(engine, name)
        sets = {}
        for index, ways in enumerate(cache.sets):
            if not ways:
                continue
            sets[index] = [
                (line.tag, line.dirty,
                 _intern_bytes(bytes(line.data), intern), line.lru,
                 tuple(sorted(line.taint)) if line.taint else None)
                if line.valid else None
                for line in ways]
        caches[name] = (sets, cache._tick, cache.hits, cache.misses,
                        cache.writebacks, cache.valid_lines)
    pred = engine.predictor
    return {
        "ms": (ms.pc, ms.mode, ms.kepc, ms.halted, ms.exit_code),
        "pages": pages,
        "rf": (list(rf.values), list(rf.state), list(rf.rename_map),
               list(rf.free_list), list(rf.pending_free),
               sorted(rf.tainted), rf.live_count),
        "lsq": ([(e.valid, e.is_store, e.addr, e.data, e.nbytes,
                  bytes(e.old_data), e.dest_phys, e.alloc_cycle,
                  e.commit_cycle, e.in_kernel) for e in lsq.entries],
                lsq._next, lsq.valid_count),
        "caches": caches,
        "pred": (list(pred.counters), list(pred.btb), pred.lookups,
                 pred.mispredicts),
        "timing": (engine.fetch_time, engine.last_commit,
                   list(engine.reg_ready), list(engine.rob_commits),
                   list(engine.iq_issues),
                   {k: list(v) for k, v in engine.fu.items()}),
        "counts": (engine.instructions, engine.kernel_instructions),
        "fetch": _fetch_key(engine),
        "probe": sorted(engine.probe.mem_taint),
    }


def _restore_cache(cache: Cache, state: tuple) -> None:
    sets, tick, hits, misses, writebacks, valid_lines = state
    cache.sets = [[] for _ in range(cache.n_sets)]
    for index, ways in sets.items():
        dst = cache.sets[index]
        for entry in ways:
            line = Line(cache.line_size)
            if entry is not None:
                tag, dirty, data, lru, taint = entry
                line.tag = tag
                line.valid = True
                line.dirty = dirty
                line.data[:] = data
                line.lru = lru
                line.taint = set(taint) if taint else None
            dst.append(line)
    cache._tick = tick
    cache.hits = hits
    cache.misses = misses
    cache.writebacks = writebacks
    cache.valid_lines = valid_lines


def restore_pipeline(engine: PipelineEngine, state: dict) -> None:
    """Restore a :func:`capture_pipeline` state into a fresh engine.

    Fault machinery (scheduled faults, crossing state) and observer
    hooks are deliberately untouched: the restored engine continues
    exactly as the capture engine would, with whatever faults the
    caller scheduled still pending.
    """
    from collections import deque

    ms = engine.ms
    (ms.pc, ms.mode, ms.kepc, ms.halted, ms.exit_code) = state["ms"]
    engine.memory.restore_pages(state["pages"])
    rf = engine.rf
    (values, rstate, rename, free, pending, tainted,
     live_count) = state["rf"]
    rf.values = list(values)
    rf.state = list(rstate)
    rf.rename_map = list(rename)
    rf.free_list = deque(free)
    rf.pending_free = deque(pending)
    rf.tainted = set(tainted)
    rf.live_count = live_count
    entries, nxt, valid_count = state["lsq"]
    lsq = engine.lsq
    for entry, fields in zip(lsq.entries, entries):
        (entry.valid, entry.is_store, entry.addr, entry.data,
         entry.nbytes, entry.old_data, entry.dest_phys,
         entry.alloc_cycle, entry.commit_cycle,
         entry.in_kernel) = fields
    lsq._next = nxt
    lsq.valid_count = valid_count
    for name in ("l2", "l1i", "l1d"):
        _restore_cache(getattr(engine, name), state["caches"][name])
    pred = engine.predictor
    counters, btb, lookups, mispredicts = state["pred"]
    pred.counters = list(counters)
    pred.btb = list(btb)
    pred.lookups = lookups
    pred.mispredicts = mispredicts
    (engine.fetch_time, engine.last_commit, reg_ready, rob, iq,
     fu) = state["timing"]
    engine.reg_ready = list(reg_ready)
    engine.rob_commits = deque(rob)
    engine.iq_issues = deque(iq)
    engine.fu = {k: list(v) for k, v in fu.items()}
    engine.instructions, engine.kernel_instructions = state["counts"]
    base, tag = state["fetch"]
    engine._fetch_line_base = base
    engine._fetch_line_tag = tag
    engine._fetch_line = None
    if base != -1:
        index, _ = engine.l1i._index_tag(base)
        engine._fetch_line = engine.l1i._find(index, tag)
    engine.probe.mem_taint = set(state["probe"])
    engine.probe.any_taint = bool(engine.probe.mem_taint)
    # per-instruction transients are dead at a boundary
    engine.dest_phys = -1
    engine.src_vals = {}
    engine.mem_latency = 0
    engine.pending_mem = None


# ---------------------------------------------------------------------------
# capture / restore: functional
# ---------------------------------------------------------------------------
def capture_functional(engine: FunctionalEngine,
                       intern: "dict | None" = None) -> dict:
    ms = engine.ms
    pages = {base: _intern_bytes(data, intern)
             for base, data in engine.memory.snapshot_pages().items()}
    return {
        "ms": (ms.pc, ms.mode, ms.kepc, ms.halted, ms.exit_code),
        "regs": list(engine.regs),
        "pages": pages,
        "executed": engine.executed,
        "counters": dict(engine._counters),
        "last_dest": engine.last_dest,
        "host_output": bytes(engine._host_output),
    }


def restore_functional(engine: FunctionalEngine, state: dict) -> None:
    ms = engine.ms
    (ms.pc, ms.mode, ms.kepc, ms.halted, ms.exit_code) = state["ms"]
    engine.regs = list(state["regs"])
    engine.memory.restore_pages(state["pages"])
    engine.executed = state["executed"]
    engine._counters = dict(state["counters"])
    engine.last_dest = state["last_dest"]
    engine._host_output = bytearray(state["host_output"])


# ---------------------------------------------------------------------------
# capture hooks (installed as engine.fastpath during capture runs)
# ---------------------------------------------------------------------------
class _PipelineCapture:
    """Capture a checkpoint at every boundary; never exits early."""

    def __init__(self, interval: int) -> None:
        self.interval = interval
        self.next_check = 0
        self.checkpoints: list = []
        self.digests: dict = {}
        self._intern: dict = {}

    def poll(self, engine: PipelineEngine):
        digest = pipeline_digest(engine)
        assert digest is not None, "capture runs are fault-free"
        self.checkpoints.append(Checkpoint(
            instructions=engine.instructions,
            cycle=engine.fetch_time,
            counters={},
            digest=digest,
            state=capture_pipeline(engine, self._intern)))
        self.digests[engine.instructions] = digest
        self.next_check = engine.instructions + self.interval
        return None


class _FunctionalCapture:
    def __init__(self, interval: int) -> None:
        self.interval = interval
        self.next_check = 0
        self.checkpoints: list = []
        self.digests: dict = {}
        self._intern: dict = {}

    def poll(self, engine: FunctionalEngine):
        digest = functional_digest(engine)
        self.checkpoints.append(Checkpoint(
            instructions=engine.executed,
            cycle=0.0,
            counters=dict(engine._counters),
            digest=digest,
            state=capture_functional(engine, self._intern)))
        self.digests[engine.executed] = digest
        self.next_check = engine.executed + self.interval
        return None


# ---------------------------------------------------------------------------
# early-exit hooks (installed as engine.fastpath during injection runs)
# ---------------------------------------------------------------------------
class _PipelineFastPath:
    """Early Masked termination against the golden digest trace."""

    __slots__ = ("store", "next_check")

    def __init__(self, store: CheckpointStore, start: int) -> None:
        self.store = store
        self.next_check = start

    def poll(self, engine: PipelineEngine):
        store = self.store
        self.next_check = engine.instructions + store.interval
        if engine._next_fault < len(engine.faults):
            return None  # convergence guard: fault not yet applied
        expect = store.digests.get(engine.instructions)
        if expect is None or pipeline_digest(engine) != expect:
            return None
        final = store.final
        registry = get_registry()
        if registry.enabled:
            registry.counter(FASTPATH_EARLY_EXITS).inc()
            registry.counter(FASTPATH_INSTRUCTIONS_SAVED).inc(
                final["instructions"] - engine.instructions)
        return PipelineResult(
            status=RunStatus.COMPLETED,
            output=final["output"],
            exit_code=final["exit_code"],
            cycles=final["cycles"],
            instructions=final["instructions"],
            kernel_instructions=final["kernel_instructions"],
            fault_applied=engine.fault_applied,
            fault_live=engine.fault_live,
            crossing=engine.crossing,
        )


class _FunctionalFastPath:
    __slots__ = ("store", "next_check")

    def __init__(self, store: CheckpointStore, start: int) -> None:
        self.store = store
        self.next_check = start

    def poll(self, engine: FunctionalEngine):
        store = self.store
        self.next_check = engine.executed + store.interval
        counters = engine._counters
        for action in engine._actions:
            if counters[action.counter] <= action.when:
                return None  # convergence guard: action still pending
        expect = store.digests.get(engine.executed)
        if expect is None or functional_digest(engine) != expect:
            return None
        final = store.final
        registry = get_registry()
        if registry.enabled:
            registry.counter(FASTPATH_EARLY_EXITS).inc()
            registry.counter(FASTPATH_INSTRUCTIONS_SAVED).inc(
                final["instructions"] - engine.executed)
        return FuncResult(
            status=RunStatus.COMPLETED,
            output=final["output"],
            exit_code=final["exit_code"],
            instructions=final["instructions"],
        )


# ---------------------------------------------------------------------------
# capture drivers
# ---------------------------------------------------------------------------
def build_pipeline_store(image_factory, config, max_instructions: int,
                         max_cycles: float, interval: int,
                         key: str = "") -> CheckpointStore:
    """Run the fault-free capture run and collect every checkpoint.

    *image_factory* builds a fresh :class:`SystemImage`; the limits
    must equal the ones injection runs will use, so the captured state
    trajectory is identical to every injection run's pre-fault prefix.
    """
    engine = PipelineEngine(image_factory(), config,
                            max_instructions=max_instructions,
                            max_cycles=max_cycles)
    hook = _PipelineCapture(interval)
    engine.fastpath = hook
    result = engine.run()
    if result.status is not RunStatus.COMPLETED:
        raise RuntimeError(
            f"pipeline capture run did not complete: {result.status}")
    return CheckpointStore(
        schema=SNAPSHOT_SCHEMA_VERSION, engine="pipeline", key=key,
        interval=interval, checkpoints=hook.checkpoints,
        digests=hook.digests,
        final={"output": result.output, "exit_code": result.exit_code,
               "cycles": result.cycles,
               "instructions": result.instructions,
               "kernel_instructions": result.kernel_instructions})


def build_functional_store(image_factory, kernel: str,
                           max_instructions: int, interval: int,
                           key: str = "") -> CheckpointStore:
    """Capture run for the functional engine (``sim`` or ``host``).

    A never-firing dummy action is scheduled so the trigger counters
    advance exactly as they do in injection runs (the engine only
    counts trigger streams while actions are scheduled).
    """
    engine = FunctionalEngine(image_factory(), kernel=kernel,
                              max_instructions=max_instructions)
    engine.schedule(FaultAction("commit", -1, lambda _engine: None))
    hook = _FunctionalCapture(interval)
    engine.fastpath = hook
    result = engine.run()
    if result.status is not RunStatus.COMPLETED:
        raise RuntimeError(
            f"functional capture run ({kernel}) did not complete: "
            f"{result.status}")
    return CheckpointStore(
        schema=SNAPSHOT_SCHEMA_VERSION, engine=f"functional-{kernel}",
        key=key, interval=interval, checkpoints=hook.checkpoints,
        digests=hook.digests,
        final={"output": result.output, "exit_code": result.exit_code,
               "instructions": result.instructions})


# ---------------------------------------------------------------------------
# injector entry points
# ---------------------------------------------------------------------------
def prepare_pipeline_fastpath(engine: PipelineEngine,
                              store: CheckpointStore) -> Checkpoint:
    """Restore the nearest checkpoint before the engine's earliest
    scheduled fault and install the early-exit hook."""
    cycle = min(f.cycle for f in engine.faults) if engine.faults \
        else float("inf")
    cp = store.nearest_for_cycle(cycle)
    restore_pipeline(engine, cp.state)
    engine.fastpath = _PipelineFastPath(store, cp.instructions)
    registry = get_registry()
    if registry.enabled:
        registry.counter(FASTPATH_RESTORES).inc()
        registry.counter(FASTPATH_CYCLES_SKIPPED).inc(int(cp.cycle))
        registry.counter(FASTPATH_INSTRUCTIONS_SKIPPED).inc(
            cp.instructions)
    return cp


def prepare_functional_fastpath(engine: FunctionalEngine,
                                store: CheckpointStore) -> Checkpoint:
    """Restore the nearest checkpoint before the earliest scheduled
    action's trigger and install the early-exit hook."""
    cp = store.checkpoints[0]
    for action in engine._actions:
        cand = store.nearest_for_counter(action.counter, action.when)
        if cand.instructions < cp.instructions or cp is None:
            cp = cand
    # (single-action engines — the normal case — pick its checkpoint;
    # with several actions the earliest-restoring one wins)
    if engine._actions:
        cps = [store.nearest_for_counter(a.counter, a.when)
               for a in engine._actions]
        cp = min(cps, key=lambda c: c.instructions)
    restore_functional(engine, cp.state)
    engine.fastpath = _FunctionalFastPath(store, cp.instructions)
    registry = get_registry()
    if registry.enabled:
        registry.counter(FASTPATH_RESTORES).inc()
        registry.counter(FASTPATH_INSTRUCTIONS_SKIPPED).inc(
            cp.instructions)
    return cp


# ---------------------------------------------------------------------------
# on-disk persistence (pickle; validated by schema + key on load)
# ---------------------------------------------------------------------------
def save_store(path: "Path | str", store: CheckpointStore) -> None:
    """Atomically persist a store; best-effort (an unwritable cache
    directory degrades to rebuilding per process, never to failure)."""
    path = Path(path)
    try:
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=path.name + ".")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(store, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass


def load_store(path: "Path | str",
               key: str) -> "CheckpointStore | None":
    """Load a persisted store; None (and unlink) on any mismatch."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            store = pickle.load(fh)
    except OSError:
        return None
    except Exception:
        path.unlink(missing_ok=True)
        return None
    if not isinstance(store, CheckpointStore) \
            or store.schema != SNAPSHOT_SCHEMA_VERSION \
            or store.key != key or not store.checkpoints:
        path.unlink(missing_ok=True)
        return None
    return store
