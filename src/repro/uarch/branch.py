"""Branch prediction: a bimodal 2-bit predictor with a direct-mapped BTB.

The predictor only affects *timing* (misprediction redirects insert
frontend bubbles) and *physical-register pressure* (a misprediction
squashes the rename allocations of the wrong path).  It is deliberately
simple; the paper's vulnerability effects depend on execution-time and
occupancy differences between cores, which a bimodal predictor with
per-core table sizes captures.
"""

from __future__ import annotations


class BranchPredictor:
    """2-bit saturating counters indexed by PC, plus a BTB for targets."""

    TAKEN_INIT = 1  # weakly not-taken

    def __init__(self, entries: int, btb_entries: int) -> None:
        if entries & (entries - 1) or btb_entries & (btb_entries - 1):
            raise ValueError("predictor table sizes must be powers of two")
        self.entries = entries
        self.btb_entries = btb_entries
        self.counters = [self.TAKEN_INIT] * entries
        self.btb: list[tuple[int, int] | None] = [None] * btb_entries
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def _btb_index(self, pc: int) -> int:
        return (pc >> 2) & (self.btb_entries - 1)

    def predict(self, pc: int) -> tuple[bool, int | None]:
        """Predict (taken?, target) for the branch at *pc*.

        The target is None on a BTB miss — a taken prediction without a
        target still redirects like a misprediction (frontend cannot
        follow it).
        """
        self.lookups += 1
        taken = self.counters[self._index(pc)] >= 2
        entry = self.btb[self._btb_index(pc)]
        target = entry[1] if entry is not None and entry[0] == pc else None
        return taken, target

    def update(self, pc: int, taken: bool, target: int) -> bool:
        """Train on the resolved outcome; returns True on misprediction."""
        predicted_taken, predicted_target = self.predict(pc)
        index = self._index(pc)
        counter = self.counters[index]
        if taken and counter < 3:
            self.counters[index] = counter + 1
        elif not taken and counter > 0:
            self.counters[index] = counter - 1
        if taken:
            self.btb[self._btb_index(pc)] = (pc, target)
        mispredicted = (predicted_taken != taken
                        or (taken and predicted_target != target))
        if mispredicted:
            self.mispredicts += 1
        return mispredicted

    def stats(self) -> dict:
        return {"lookups": self.lookups, "mispredicts": self.mispredicts}
