"""Batched bit-parallel execution of functional injection runs.

A campaign executes thousands of near-identical runs: each one follows
the golden trajectory except for a handful of architecturally-diverged
words.  This module packs up to 64 such runs ("lanes") into NumPy
uint64 arrays and steps them in lockstep behind a single *leader*
engine that replays the golden trajectory.

Representation
--------------
Per-lane state is stored as an XOR *diff* against the leader, one
uint64 vector element per lane:

* ``reg diff``   — an ``(n_regs, n_lanes)`` array; a lane's register
  value is ``leader_reg ^ diff``.
* ``memory diff`` — a sparse ``{8-aligned word address: (n_lanes,)}``
  map, little-endian (byte ``addr+k`` lives in bits ``8k..8k+7``).
* ``output/exit diff`` — for the host kernel, per-byte diffs of the
  emulated output stream and the exit code.

A lane whose diffs are all zero is *bit-identical* to golden; the
retire scan uses exactly the reconvergence predicate the divergence
digest in :mod:`repro.uarch.snapshot` proves (all-zero diff <=>
identical digest), without hashing anything.

Lockstep only holds while control flow is shared.  Any lane whose
next fetch, branch direction, jump target, memory address, divisor
(div-by-zero), or syscall inputs diverge from the leader is *evicted*:
its full architectural state is materialised from leader+diff and the
run is finished on the scalar engine, so the scalar semantics —
including traps and containment — are inherited rather than
re-implemented.  Fault appliers run against a :class:`_LaneView` shim;
an applier that touches control state (``ms.pc``) is evicted as a
scalar *rerun* from reset.

The module is import-safe without NumPy (``batch_available()`` is then
False and campaigns fall back to the scalar path).
"""

from __future__ import annotations

import os

try:  # gated dependency: the scalar engines never need numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None

from ..isa import layout
from ..kernel.syscalls import EXIT_CODE_OFFSET, SYS_EXIT, SYS_WRITE
from ..obs.metrics import (BATCH_BATCHES, BATCH_EARLY_RETIRES,
                           BATCH_LANES_PACKED, BATCH_SCALAR_EVICTIONS,
                           get_registry)
from .cpu import _link_reg, _sdiv, _srem, execute, to_signed
from .exceptions import ContainmentError, DetectTrap, SimException
from .functional import FuncResult, RunStatus, _dest_reg, _writes_reg
from .memory import ADDR_MASK

#: Widest batch: one lane per uint64 vector element keeps every
#: reduction a single vector op; campaigns chunk n runs into ceil(n/64)
#: batches.
MAX_LANES = 64
DEFAULT_LANES = 64
#: Instructions between retire scans (diff-reduction + lane retire).
RETIRE_EVERY = 64

FULL = 0xFFFF_FFFF_FFFF_FFFF
_PAGE = layout.PAGE_SIZE
_PAGE_MASK = _PAGE - 1
_FALSY = {"0", "false", "no", "off", ""}


def batch_available() -> bool:
    """True when the batched engine can run (NumPy importable)."""
    return np is not None


def resolve_batch_lanes(explicit: "int | None" = None) -> int:
    """Lane count for batched campaigns; 0 disables batching.

    ``explicit`` (the ``--batch-lanes`` flag) wins over the
    ``REPRO_BATCH`` environment switch, where ``1``/truthy means "on at
    the default width" and an integer >= 2 selects a width.
    """
    if np is None:
        return 0
    if explicit is not None:
        return max(0, min(int(explicit), MAX_LANES))
    env = os.environ.get("REPRO_BATCH")
    if env is None:
        return 0
    env = env.strip().lower()
    if env in _FALSY:
        return 0
    try:
        lanes = int(env)
    except ValueError:
        return DEFAULT_LANES
    if lanes <= 1:
        return DEFAULT_LANES if lanes == 1 else 0
    return min(lanes, MAX_LANES)


# ---------------------------------------------------------------------------
# bit-plane codec (pure functions; property-tested in
# tests/test_batch_codec.py)
# ---------------------------------------------------------------------------
def pack_lanes(lanes_values):
    """Pack per-lane word lists into an ``(n_words, n_lanes)`` array.

    ``lanes_values[lane][i]`` is word *i* of that lane (``0 <= word <
    2**64``); element ``[i, lane]`` of the result holds it.
    """
    if np is None:  # pragma: no cover - guarded by batch_available
        raise RuntimeError("numpy is required for batched execution")
    arr = np.array(lanes_values, dtype=np.uint64)
    if arr.ndim != 2:
        raise ValueError("pack_lanes wants a rectangular lane x word list")
    return np.ascontiguousarray(arr.T)


def unpack_lane(planes, lane: int):
    """Inverse of :func:`pack_lanes` for a single lane."""
    return [int(word) for word in planes[:, lane]]


class LaneOutcome:
    """How one lane of a batch finished.

    ``kind`` is ``"result"`` (completed in lockstep; ``result`` is the
    :class:`FuncResult`), ``"state"`` (evicted with a materialised
    architectural state to continue from on the scalar engine), or
    ``"rerun"`` (evicted at a point the diff representation cannot
    express — rerun the whole injection on the scalar path).
    """

    __slots__ = ("kind", "result", "state")

    def __init__(self, kind, result=None, state=None):
        self.kind = kind
        self.result = result
        self.state = state


# ---------------------------------------------------------------------------
# lane view: scalar fault appliers run unmodified against one lane
# ---------------------------------------------------------------------------
class _LaneRegs:
    """Register-file view of one lane (leader ^ diff)."""

    __slots__ = ("_batch", "_lane")

    def __init__(self, batch, lane):
        self._batch = batch
        self._lane = lane

    def __len__(self):
        return len(self._batch._eng.regs)

    def __getitem__(self, index):
        batch = self._batch
        return batch._eng.regs[index] ^ int(batch._rd[index][self._lane])

    def __setitem__(self, index, value):
        batch = self._batch
        diff = (value ^ batch._eng.regs[index]) & FULL
        batch._rd[index][self._lane] = diff
        if diff:
            batch._reg_nz.add(index)
            batch._dirty = True


class _LaneMS:
    """Machine-state view: reads come from the leader; any write marks
    the lane structurally diverged (control state cannot be a diff)."""

    __slots__ = ("_view", "_ms")

    def __init__(self, view, ms):
        object.__setattr__(self, "_view", view)
        object.__setattr__(self, "_ms", ms)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_ms"), name)

    def __setattr__(self, name, value):
        object.__getattribute__(self, "_view")._structural = True


class _LaneMemory:
    """Byte-wise memory view of one lane (leader ^ diff)."""

    __slots__ = ("_batch", "_lane")

    def __init__(self, batch, lane):
        self._batch = batch
        self._lane = lane

    def read(self, addr, nbytes):
        return self._batch._lane_mem_read(self._lane, addr & ADDR_MASK,
                                          nbytes)

    def read_int(self, addr, nbytes, signed=False):
        value = int.from_bytes(self.read(addr, nbytes), "little")
        if signed and value & (1 << (8 * nbytes - 1)):
            value -= 1 << (8 * nbytes)
        return value

    def write(self, addr, data):
        batch, lane = self._batch, self._lane
        addr &= ADDR_MASK
        for k, byte in enumerate(bytes(data)):
            batch._lane_write_byte(lane, addr + k, byte)

    def write_int(self, addr, value, nbytes):
        span = (1 << (8 * nbytes)) - 1
        self.write(addr, (value & span).to_bytes(nbytes, "little"))

    def __getattr__(self, name):
        return getattr(self._batch._eng.memory, name)


class _LaneView:
    """Engine facade handed to fault appliers for one lane."""

    def __init__(self, batch, lane):
        self._batch = batch
        self._lane = lane
        self._structural = False
        self.regs = _LaneRegs(batch, lane)
        self.ms = _LaneMS(self, batch._eng.ms)
        self.memory = _LaneMemory(batch, lane)

    def __getattr__(self, name):
        # last_dest, regs_meta, image, ... are shared with the leader
        return getattr(self._batch._eng, name)


# ---------------------------------------------------------------------------
# the batched engine
# ---------------------------------------------------------------------------
class BatchedFunctionalEngine:
    """Run up to 64 fault actions in lockstep over one leader engine.

    ``engine`` must be a *fresh* :class:`FunctionalEngine` over the
    golden image with **no** actions scheduled — triggers are managed
    here.  ``store`` (optional) is the golden checkpoint store used to
    start the batch at the nearest fork point and to early-stop once
    every live lane has provably reconverged.
    """

    def __init__(self, engine, actions, store=None):
        if np is None:
            raise RuntimeError("numpy is required for batched execution")
        if engine._actions:
            raise ValueError("leader engine must have no scheduled actions")
        n = len(actions)
        if not 1 <= n <= MAX_LANES:
            raise ValueError(f"lane count must be 1..{MAX_LANES}, got {n}")
        self._eng = engine
        self._actions = list(actions)
        self._store = store
        self._n = n
        self._xlen = engine.ms.xlen
        self._masku = np.uint64(engine.ms.mask)
        n_regs = len(engine.regs)
        self._rd = np.zeros((n_regs, n), dtype=np.uint64)
        self._mem_diff = {}
        self._out_diff = {}
        self._exit_diff = np.zeros(n, dtype=np.uint64)
        self._reg_nz = set()
        self._dirty = False
        self._fired = [False] * n
        self._evicted = [False] * n
        self._retired = [False] * n
        self._outcomes = [None] * n
        self._n_evicted = 0
        self.early_retires = 0
        self._commit_t = {}
        self._dest_t = {}
        for lane, action in enumerate(self._actions):
            if action.counter not in ("commit", "user_dest"):
                raise ValueError(f"unknown trigger {action.counter!r}")
            table = (self._commit_t if action.counter == "commit"
                     else self._dest_t)
            table.setdefault(action.when, []).append(lane)
        self._next_scan = 0

    # -- public API ----------------------------------------------------
    @property
    def scalar_evictions(self) -> int:
        return self._n_evicted

    def materialize_lane(self, lane: int) -> dict:
        """Full architectural state of one lane (capture format)."""
        return self._materialize(lane)

    def run(self):
        """Step every lane to completion; one LaneOutcome per action."""
        eng = self._eng
        if self._store is not None:
            cp = min((self._store.nearest_for_counter(a.counter, a.when)
                      for a in self._actions),
                     key=lambda c: c.instructions)
            from .snapshot import restore_functional
            restore_functional(eng, cp.state)
        self._next_scan = eng.executed + RETIRE_EVERY
        old_err = np.seterr(over="ignore")
        try:
            self._run_loop()
        except (SimException, DetectTrap) as exc:
            raise ContainmentError(
                "batched leader diverged from the golden trajectory",
                context={"engine": "batch",
                         "error": f"{type(exc).__name__}: {exc}",
                         "pc": eng.ms.pc,
                         "instructions": eng.executed}) from exc
        finally:
            np.seterr(**old_err)
        self._finish()
        registry = get_registry()
        if registry.enabled:
            registry.counter(BATCH_BATCHES).inc()
            registry.counter(BATCH_LANES_PACKED).inc(self._n)
            registry.counter(BATCH_EARLY_RETIRES).inc(self.early_retires)
            registry.counter(BATCH_SCALAR_EVICTIONS).inc(self._n_evicted)
        return list(self._outcomes)

    # -- main loop -----------------------------------------------------
    def _run_loop(self):
        eng = self._eng
        ms = eng.ms
        counters = eng._counters
        commit_t, dest_t = self._commit_t, self._dest_t
        fetch = eng._fetch
        exec_step = self._exec_step
        host_kernel = eng.kernel_mode_kind == "host"
        has_store = self._store is not None
        max_instructions = eng.max_instructions
        n = self._n
        while not ms.halted:
            if eng.executed >= max_instructions:
                raise ContainmentError(
                    "batched leader hit the golden instruction budget",
                    context={"engine": "batch", "pc": ms.pc,
                             "instructions": eng.executed})
            if self._n_evicted == n:
                return
            if (has_store and not commit_t and not dest_t
                    and not self._dirty):
                self._early_stop()
                return
            instr = fetch()
            if self._mem_diff and self._dirty:
                # lanes about to decode a different word must leave the
                # batch *before* this slot's trigger fires (counters
                # are exact here)
                self._check_fetch()
            if commit_t:
                lanes = commit_t.pop(counters["commit"], None)
                if lanes is not None:
                    for lane in lanes:
                        self._apply(lane)
            counters["commit"] += 1
            if host_kernel and instr.op == "syscall":
                self._host_syscall_step()
            else:
                exec_step(instr)
            eng.executed += 1
            if not ms.in_kernel and _writes_reg(instr):
                eng.last_dest = _dest_reg(instr, ms.xlen)
                if dest_t:
                    lanes = dest_t.pop(counters["user_dest"], None)
                    if lanes is not None:
                        for lane in lanes:
                            self._apply(lane)
                counters["user_dest"] += 1
            if self._dirty and eng.executed >= self._next_scan:
                self._scan()

    def _finish(self):
        for lane in range(self._n):
            if self._outcomes[lane] is None:
                self._outcomes[lane] = LaneOutcome(
                    "result", result=self._collect_lane(lane))

    def _early_stop(self):
        """Every live lane is architecturally golden and all triggers
        have fired: synthesize results from the store's final record,
        exactly as the scalar fast path would at its next digest."""
        final = self._store.final
        out = final["output"]
        exit_code = final["exit_code"]
        instructions = final["instructions"]
        for lane in range(self._n):
            if self._outcomes[lane] is not None:
                continue
            lane_out = out
            if self._out_diff:
                buf = bytearray(out)
                for pos, arr in self._out_diff.items():
                    v = int(arr[lane])
                    if v and pos < len(buf):
                        buf[pos] ^= v
                lane_out = bytes(buf)
            self._outcomes[lane] = LaneOutcome("result", result=FuncResult(
                status=RunStatus.COMPLETED,
                output=lane_out,
                exit_code=exit_code ^ int(self._exit_diff[lane]),
                instructions=instructions))
            if not self._retired[lane]:
                self._retired[lane] = True
                self.early_retires += 1

    # -- triggers ------------------------------------------------------
    def _apply(self, lane):
        if self._evicted[lane]:  # pragma: no cover - defensive
            return
        view = _LaneView(self, lane)
        try:
            self._actions[lane].apply(view)
        except Exception:
            # Whatever the applier did to the scalar engine (including
            # raising), the scalar rerun reproduces it exactly.
            self._fired[lane] = True
            self._evict(lane, "rerun")
            return
        self._fired[lane] = True
        if view._structural:
            self._evict(lane, "rerun")

    # -- eviction ------------------------------------------------------
    def _evict(self, lane, kind):
        if self._evicted[lane]:  # pragma: no cover - defensive
            return
        if kind == "state":
            self._outcomes[lane] = LaneOutcome(
                "state", state=self._materialize(lane))
        else:
            self._outcomes[lane] = LaneOutcome("rerun")
        self._evicted[lane] = True
        self._n_evicted += 1
        # Zero the lane's columns so reductions, the retire scan and
        # the early-stop check see live lanes only.
        self._rd[:, lane] = 0
        for arr in self._mem_diff.values():
            arr[lane] = 0
        for arr in self._out_diff.values():
            arr[lane] = 0
        self._exit_diff[lane] = 0

    def _evict_mask(self, mask):
        for lane in np.nonzero(mask)[0]:
            self._evict(int(lane), "state")

    def _materialize(self, lane):
        eng = self._eng
        ms = eng.ms
        rd = self._rd
        regs = [eng.regs[i] ^ int(rd[i][lane])
                for i in range(len(eng.regs))]
        pages = dict(eng.memory.snapshot_pages())
        patched = {}
        for word, arr in self._mem_diff.items():
            v = int(arr[lane])
            if not v:
                continue
            base = word & ~_PAGE_MASK  # 8-aligned: never straddles
            page = patched.get(base)
            if page is None:
                page = bytearray(pages.get(base, bytes(_PAGE)))
                patched[base] = page
            off = word - base
            chunk = int.from_bytes(page[off:off + 8], "little") ^ v
            page[off:off + 8] = chunk.to_bytes(8, "little")
        for base, page in patched.items():
            pages[base] = bytes(page)
        host = bytearray(eng._host_output)
        for pos, arr in self._out_diff.items():
            v = int(arr[lane])
            if v and pos < len(host):
                host[pos] ^= v
        return {
            "ms": (ms.pc, ms.mode, ms.kepc, ms.halted,
                   ms.exit_code ^ int(self._exit_diff[lane])),
            "regs": regs,
            "pages": pages,
            "executed": eng.executed,
            "counters": dict(eng._counters),
            "last_dest": eng.last_dest,
            "host_output": bytes(host),
        }

    # -- memory diff helpers -------------------------------------------
    def _check_fetch(self):
        pc = self._eng.ms.pc & ADDR_MASK
        word = pc & ~7
        arr = self._mem_diff.get(word)
        if arr is None:
            return
        bits = (arr >> np.uint64((pc - word) * 8)) & np.uint64(0xFFFF_FFFF)
        if bits.any():
            self._evict_mask(bits != 0)

    def _mem_gather(self, addr, nbytes):
        """Per-lane XOR diff of the ``nbytes`` at ``addr`` (or None)."""
        md = self._mem_diff
        if not md:
            return None
        word = addr & ~7
        off = (addr - word) * 8
        lo = md.get(word)
        hi = md.get(word + 8) if off + 8 * nbytes > 64 else None
        if lo is None and hi is None:
            return None
        g = None
        if lo is not None:
            g = lo >> np.uint64(off)
        if hi is not None:
            part = hi << np.uint64(64 - off)
            g = part if g is None else g | part
        g = g & np.uint64((1 << (8 * nbytes)) - 1)
        return g if g.any() else None

    def _mem_deposit(self, addr, nbytes, diff):
        """Overwrite the span's diff bits (store semantics)."""
        md = self._mem_diff
        word = addr & ~7
        off = (addr - word) * 8
        span = (1 << (8 * nbytes)) - 1
        straddles = off + 8 * nbytes > 64
        has_diff = diff.any()
        if not has_diff and word not in md \
                and not (straddles and word + 8 in md):
            return
        diff = diff & np.uint64(span)
        mask_lo = (span << off) & FULL
        lo = md.get(word)
        if lo is None:
            lo = md[word] = np.zeros(self._n, dtype=np.uint64)
        lo[:] = (lo & ~np.uint64(mask_lo)) \
            | ((diff << np.uint64(off)) & np.uint64(mask_lo))
        if straddles:
            mask_hi = span >> (64 - off)
            hi = md.get(word + 8)
            if hi is None:
                hi = md[word + 8] = np.zeros(self._n, dtype=np.uint64)
            hi[:] = (hi & ~np.uint64(mask_hi)) \
                | ((diff >> np.uint64(64 - off)) & np.uint64(mask_hi))
        if has_diff:
            self._dirty = True

    def _lane_mem_read(self, lane, addr, nbytes):
        data = bytearray(self._eng.memory.read(addr, nbytes))
        end = addr + nbytes
        for word, arr in self._mem_diff.items():
            if word + 8 <= addr or word >= end:
                continue
            v = int(arr[lane])
            if not v:
                continue
            for k in range(8):
                a = word + k
                if addr <= a < end:
                    data[a - addr] ^= (v >> (8 * k)) & 0xFF
        return bytes(data)

    def _lane_read_int(self, lane, addr, nbytes):
        return int.from_bytes(self._lane_mem_read(lane, addr, nbytes),
                              "little")

    def _lane_write_byte(self, lane, addr, value):
        diff = value ^ self._eng.memory.read(addr & ADDR_MASK, 1)[0]
        word = addr & ~7
        md = self._mem_diff
        arr = md.get(word)
        if arr is None:
            if not diff:
                return
            arr = md[word] = np.zeros(self._n, dtype=np.uint64)
        shift = (addr - word) * 8
        cur = int(arr[lane])
        arr[lane] = ((cur & ~(0xFF << shift)) | (diff << shift)) & FULL
        if diff:
            self._dirty = True

    # -- retire scan ---------------------------------------------------
    def _scan(self):
        self._next_scan = self._eng.executed + RETIRE_EVERY
        nz = self._reg_nz
        if nz:
            idx = list(nz)
            sub = self._rd[idx]
            acc = np.bitwise_or.reduce(sub, axis=0)
            for index, alive in zip(idx, sub.any(axis=1)):
                if not alive:
                    nz.discard(index)
        else:
            acc = np.zeros(self._n, dtype=np.uint64)
        md = self._mem_diff
        for word in list(md):
            arr = md[word]
            if arr.any():
                acc |= arr
            else:
                del md[word]
        self._dirty = bool(acc.any())
        full = acc
        if self._out_diff:
            full = acc.copy()
            for arr in self._out_diff.values():
                full |= arr
        quiet = full | self._exit_diff == 0
        fired, evicted, retired = self._fired, self._evicted, self._retired
        for lane in range(self._n):
            if fired[lane] and not evicted[lane] and not retired[lane] \
                    and quiet[lane]:
                retired[lane] = True
                self.early_retires += 1

    # -- per-lane result collection ------------------------------------
    def _collect_lane(self, lane):
        eng = self._eng
        if eng.kernel_mode_kind == "host":
            out = bytearray(eng._host_output)
            for pos, arr in self._out_diff.items():
                v = int(arr[lane])
                if v and pos < len(out):
                    out[pos] ^= v
            output = bytes(out)
            exit_code = eng.ms.exit_code ^ int(self._exit_diff[lane])
        else:
            out_len = self._lane_read_int(lane, layout.OUTPUT_LEN_ADDR, 4)
            out_len = min(out_len, layout.OUTPUT_LIMIT - layout.OUTPUT_BASE)
            output = self._lane_mem_read(lane, layout.OUTPUT_BASE, out_len)
            exit_code = self._lane_read_int(
                lane, layout.KERNEL_DATA_BASE + EXIT_CODE_OFFSET, 4)
        return FuncResult(status=RunStatus.COMPLETED, output=output,
                          exit_code=exit_code, instructions=eng.executed)

    # -- host kernel ---------------------------------------------------
    def _host_syscall_step(self):
        eng = self._eng
        regs = eng.regs
        number = regs[1]
        if self._dirty:
            rd = self._rd
            d1 = rd[1]
            if 1 in self._reg_nz and d1.any():
                # different syscall number: semantics diverge
                self._evict_mask(d1 != 0)
            if number == SYS_WRITE:
                dio = rd[2] | rd[3]
                if dio.any():
                    # different buffer or length: output stream diverges
                    self._evict_mask(dio != 0)
        before = len(eng._host_output)
        eng.ms.pc += 4
        eng._host_syscall()
        if not self._dirty:
            return
        if number == SYS_WRITE:
            appended = len(eng._host_output) - before
            if appended and self._mem_diff:
                buf = regs[2] & 0xFFFF_FFFF
                end = buf + appended
                for word, arr in self._mem_diff.items():
                    if word + 8 <= buf or word >= end or not arr.any():
                        continue
                    for k in range(8):
                        a = word + k
                        if buf <= a < end:
                            bv = (arr >> np.uint64(8 * k)) \
                                & np.uint64(0xFF)
                            if bv.any():
                                self._out_diff[before + (a - buf)] = \
                                    bv.copy()
        elif number == SYS_EXIT:
            d2 = self._rd[2]
            if d2.any():
                self._exit_diff = (d2 & np.uint64(0xFFFF_FFFF)).copy()

    # -- vectorized instruction semantics ------------------------------
    def _exec_step(self, instr):
        eng = self._eng
        ms = eng.ms
        if not self._dirty:
            ms.pc = execute(instr, ms, eng._core)
            return
        op = instr.op
        d = instr.d
        cls = d.cls
        nz = self._reg_nz
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        if cls == "load":
            self._load_step(instr)
            return
        if cls == "store":
            self._store_step(instr)
            return
        if cls == "branch":
            if op in ("j", "jal"):
                ms.pc = execute(instr, ms, eng._core)
                if op == "jal":
                    self._zero_row(_link_reg(ms.xlen))
                return
            if op in ("jr", "jalr"):
                if rs1 in nz:
                    diff = self._rd[rs1]
                    if diff.any():
                        self._evict_mask(diff != 0)
                ms.pc = execute(instr, ms, eng._core)
                if op == "jalr":
                    self._zero_row(rd)
                return
            self._branch_step(instr)
            return
        if cls == "sys":
            # sim-kernel syscall/eret/halt/detect read no registers
            ms.pc = execute(instr, ms, eng._core)
            return
        if cls == "div":
            self._div_step(instr)
            return
        # ALU / MUL
        if op == "lui":
            ms.pc = execute(instr, ms, eng._core)
            self._zero_row(rd)
            return
        uses_rs2 = d.fmt == "R"
        rs1_nz = rs1 in nz
        rs2_nz = uses_rs2 and rs2 in nz
        if not rs1_nz and not rs2_nz:
            ms.pc = execute(instr, ms, eng._core)
            self._zero_row(rd)
            return
        row = self._linear_alu(op, instr, rs1, rs2, rs1_nz, rs2_nz)
        if row is not None:
            ms.pc = execute(instr, ms, eng._core)
            if rd:
                self._set_row(rd, row)
            return
        U = np.uint64
        regs = eng.regs
        a1 = (U(regs[rs1]) ^ self._rd[rs1]) if rs1_nz else U(regs[rs1])
        a2 = None
        if uses_rs2:
            a2 = (U(regs[rs2]) ^ self._rd[rs2]) if rs2_nz \
                else U(regs[rs2])
        ms.pc = execute(instr, ms, eng._core)
        if not rd:
            return
        self._assign(rd, self._alu(op, instr, a1, a2))

    def _linear_alu(self, op, instr, rs1, rs2, rs1_nz, rs2_nz):
        """Destination diff row for XOR-linear ops, else None.

        Shifts, AND and XOR distribute over XOR, so for these the lane
        diff transforms without ever materialising per-lane values:
        ``(L ^ d) op k == (L op k) ^ (d op k)``.  Only applicable when
        the non-diffed inputs (shift amounts, AND masks) are lane-
        uniform — i.e. immediates or clean registers.
        """
        U = np.uint64
        if op == "xor":
            return self._rd[rs1] ^ self._rd[rs2]
        if op == "xori":
            return self._rd[rs1]
        if op == "andi":
            return self._rd[rs1] & U(instr.imm & 0xFFFF)
        if rs1_nz and rs2_nz:
            return None
        regs = self._eng.regs
        xlen = self._xlen
        if op == "and":
            if rs2_nz:
                return self._rd[rs2] & U(regs[rs1])
            return self._rd[rs1] & U(regs[rs2])
        if op in ("slli", "srli", "sll", "srl"):
            if op in ("sll", "srl"):
                if rs2_nz:
                    return None    # lane-dependent shift amount
                shift = regs[rs2] & (xlen - 1)
            else:
                shift = instr.imm & (xlen - 1)
            d1 = self._rd[rs1]
            if op in ("slli", "sll"):
                return (d1 << U(shift)) & self._masku
            return d1 >> U(shift)
        return None

    def _alu(self, op, instr, v1, v2):
        """Per-lane result values for a (non-div) ALU/MUL op."""
        U = np.uint64
        masku = self._masku
        xlen = self._xlen
        imm = instr.imm
        if op == "add":
            return (v1 + v2) & masku
        if op == "sub":
            return (v1 - v2) & masku
        if op == "mul":
            return (v1 * v2) & masku
        if op == "and":
            return v1 & v2
        if op == "or":
            return v1 | v2
        if op == "xor":
            return v1 ^ v2
        if op == "sll":
            return (v1 << (v2 & U(xlen - 1))) & masku
        if op == "srl":
            return v1 >> (v2 & U(xlen - 1))
        if op == "sra":
            shift = (v2 & U(xlen - 1)).astype(np.int64)
            return (self._signed(v1) >> shift).astype(np.uint64) & masku
        if op == "slt":
            return (self._signed(v1) < self._signed(v2)).astype(np.uint64)
        if op == "sltu":
            return (v1 < v2).astype(np.uint64)
        if op == "addw":
            return self._sext32(v1 + v2)
        if op == "subw":
            return self._sext32(v1 - v2)
        if op == "mulw":
            return self._sext32(v1 * v2)
        if op == "sllw":
            return self._sext32(v1 << (v2 & U(31)))
        if op == "srlw":
            return self._sext32((v1 & U(0xFFFF_FFFF)) >> (v2 & U(31)))
        if op == "sraw":
            x = v1 & U(0xFFFF_FFFF)
            sx = np.ascontiguousarray((x ^ U(0x8000_0000))
                                      - U(0x8000_0000)).view(np.int64)
            shift = (v2 & U(31)).astype(np.int64)
            return self._sext32((sx >> shift).astype(np.uint64))
        if op == "addi":
            return (v1 + U(imm & FULL)) & masku
        if op == "addiw":
            return self._sext32(v1 + U(imm & FULL))
        if op == "andi":
            return v1 & U(imm & 0xFFFF)
        if op == "ori":
            return v1 | U(imm & 0xFFFF)
        if op == "xori":
            return (v1 ^ U(imm & int(masku))) & masku
        if op == "slli":
            return (v1 << U(imm & (xlen - 1))) & masku
        if op == "srli":
            return v1 >> U(imm & (xlen - 1))
        if op == "srai":
            shift = imm & (xlen - 1)
            return (self._signed(v1) >> np.int64(shift)) \
                .astype(np.uint64) & masku
        if op == "slti":
            return (self._signed(v1) < np.int64(imm)).astype(np.uint64)
        raise ContainmentError(  # pragma: no cover - table kept in sync
            f"no batched semantics for {op}",
            context={"engine": "batch", "op": op})

    def _signed(self, v):
        if self._xlen == 64:
            return np.ascontiguousarray(v).view(np.int64)
        return np.ascontiguousarray(
            (v ^ np.uint64(0x8000_0000)) - np.uint64(0x8000_0000)) \
            .view(np.int64)

    def _sext32(self, v):
        U = np.uint64
        r = v & U(0xFFFF_FFFF)
        return np.where(r & U(0x8000_0000),
                        r | U(0xFFFF_FFFF_0000_0000), r)

    def _div_step(self, instr):
        eng = self._eng
        ms = eng.ms
        nz = self._reg_nz
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        U = np.uint64
        if rs1 not in nz and rs2 not in nz:
            ms.pc = execute(instr, ms, eng._core)
            self._zero_row(rd)
            return
        d1, d2 = self._rd[rs1], self._rd[rs2]
        a1 = U(eng.regs[rs1]) ^ d1
        a2 = U(eng.regs[rs2]) ^ d2
        if rs2 in nz:
            zero_div = a2 == 0  # leader's divisor is never 0 (golden)
            if zero_div.any():
                self._evict_mask(zero_div)
        diverged = d1 | d2
        ms.pc = execute(instr, ms, eng._core)
        if not rd:
            return
        if not diverged.any():
            self._zero_row(rd)
            return
        xlen = self._xlen
        mask = int(self._masku)
        fn = _sdiv if instr.op == "div" else _srem
        leader = eng.regs[rd]
        row = np.zeros(self._n, dtype=np.uint64)
        for lane in np.nonzero(diverged)[0]:
            if self._evicted[int(lane)]:
                continue
            a = to_signed(int(a1[lane]), xlen)
            b = to_signed(int(a2[lane]), xlen)
            row[lane] = (fn(a, b) & mask) ^ leader
        self._set_row(rd, row)

    def _branch_step(self, instr):
        eng = self._eng
        ms = eng.ms
        nz = self._reg_nz
        rs1, rs2 = instr.rs1, instr.rs2
        if rs1 in nz or rs2 in nz:
            op = instr.op
            U = np.uint64
            v1 = U(eng.regs[rs1]) ^ self._rd[rs1]
            v2 = U(eng.regs[rs2]) ^ self._rd[rs2]
            a, b = eng.regs[rs1], eng.regs[rs2]
            if op in ("blt", "bge"):
                s1, s2 = self._signed(v1), self._signed(v2)
                xlen = ms.xlen
                a, b = to_signed(a, xlen), to_signed(b, xlen)
                if op == "blt":
                    taken = s1 < s2
                    leader_taken = a < b
                else:
                    taken = s1 >= s2
                    leader_taken = a >= b
            elif op == "beq":
                taken = v1 == v2
                leader_taken = a == b
            elif op == "bne":
                taken = v1 != v2
                leader_taken = a != b
            elif op == "bltu":
                taken = v1 < v2
                leader_taken = a < b
            else:  # bgeu
                taken = v1 >= v2
                leader_taken = a >= b
            split = taken != leader_taken
            if split.any():
                self._evict_mask(split)
        ms.pc = execute(instr, ms, eng._core)

    def _load_step(self, instr):
        eng = self._eng
        ms = eng.ms
        nz = self._reg_nz
        rs1, rd = instr.rs1, instr.rd
        d = instr.d
        leader_addr = (eng.regs[rs1] + instr.imm) & ms.mask & ADDR_MASK
        if rs1 in nz:
            self._check_addr_split(rs1, instr.imm, leader_addr)
        ms.pc = execute(instr, ms, eng._core)
        if not rd:
            return
        gathered = self._mem_gather(leader_addr, d.mem_bytes)
        if gathered is None:
            self._zero_row(rd)
            return
        U = np.uint64
        raw = eng.memory.read_int(leader_addr, d.mem_bytes, False)
        lane_raw = U(raw) ^ gathered
        if d.mem_signed:
            sign = U(1) << U(8 * d.mem_bytes - 1)
            value = ((lane_raw ^ sign) - sign) & self._masku
        else:
            value = lane_raw
        self._assign(rd, value)

    def _store_step(self, instr):
        eng = self._eng
        ms = eng.ms
        nz = self._reg_nz
        rs1, rs2 = instr.rs1, instr.rs2
        leader_addr = (eng.regs[rs1] + instr.imm) & ms.mask & ADDR_MASK
        if rs1 in nz:
            self._check_addr_split(rs1, instr.imm, leader_addr)
        ms.pc = execute(instr, ms, eng._core)
        self._mem_deposit(leader_addr, instr.d.mem_bytes, self._rd[rs2])

    def _check_addr_split(self, rs1, imm, leader_addr):
        """Evict lanes whose effective address differs from the leader."""
        eng = self._eng
        U = np.uint64
        v1 = U(eng.regs[rs1]) ^ self._rd[rs1]
        lane_addr = ((v1 + U(imm & FULL)) & self._masku) & U(ADDR_MASK)
        split = lane_addr != U(leader_addr)
        if split.any():
            self._evict_mask(split)

    # -- row bookkeeping -----------------------------------------------
    def _assign(self, rd, values):
        """Set a destination row from per-lane result *values*."""
        self._set_row(rd, values ^ np.uint64(self._eng.regs[rd]))

    def _set_row(self, rd, row):
        self._rd[rd] = row
        if row.any():
            self._reg_nz.add(rd)
            self._dirty = True
        else:
            self._reg_nz.discard(rd)

    def _zero_row(self, rd):
        # A write the leader and every live lane perform identically
        # clears any prior divergence of that register.
        if rd and rd in self._reg_nz:
            self._rd[rd] = 0
            self._reg_nz.discard(rd)
