"""Sparse, paged physical memory with privilege checking.

Memory is allocated lazily in 4 KiB pages.  Reads of never-written
pages *inside a mapped region* return zeroes; accesses outside every
mapped region raise an access fault.  Regions also carry a
kernel-only flag so user-mode accesses to kernel space raise privilege
faults — one of the paper's crash channels.

Addresses are 32-bit physical.  The mRISC-64 core computes addresses
in 64-bit registers; the memory system masks them to 32 bits (the
machine has no virtual memory — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import layout
from .exceptions import FaultKind, SimException

ADDR_MASK = 0xFFFF_FFFF
_PAGE = layout.PAGE_SIZE
_PAGE_MASK = _PAGE - 1


@dataclass(frozen=True)
class Region:
    """A mapped address range."""

    name: str
    base: int
    end: int               # exclusive
    kernel_only: bool = False
    writable: bool = True

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


def default_regions() -> list[Region]:
    """The standard memory map (see :mod:`repro.isa.layout`)."""
    return [
        Region("user-code", layout.USER_CODE_BASE, layout.USER_DATA_BASE),
        Region("user-data", layout.USER_DATA_BASE, layout.USER_STACK_BASE),
        Region("user-stack", layout.USER_STACK_BASE, layout.USER_STACK_END),
        Region("kernel-code", layout.KERNEL_CODE_BASE,
               layout.KERNEL_DATA_BASE, kernel_only=True),
        Region("kernel-data", layout.KERNEL_DATA_BASE,
               layout.KERNEL_STACK_TOP + 0x100, kernel_only=True),
        Region("output", layout.OUTPUT_BASE, layout.OUTPUT_LIMIT,
               kernel_only=True),
    ]


class Memory:
    """Byte-addressable sparse physical memory."""

    def __init__(self, regions: list[Region] | None = None) -> None:
        self.regions = regions if regions is not None else default_regions()
        self._pages: dict[int, bytearray] = {}
        #: copy-on-write backing (see :meth:`restore_pages`): immutable
        #: pages shared with a checkpoint; a write materialises a
        #: private ``bytearray`` copy into ``_pages`` first.
        self._backing: dict[int, bytes] | None = None
        # Sorted region list for fast lookup; region count is tiny so a
        # linear scan is fine and avoids bisect bookkeeping.
        self._regions_sorted = sorted(self.regions, key=lambda r: r.base)

    # ------------------------------------------------------------------
    # region / privilege checks
    # ------------------------------------------------------------------
    def region_of(self, addr: int) -> Region | None:
        addr &= ADDR_MASK
        for region in self._regions_sorted:
            if region.contains(addr):
                return region
        return None

    def check_access(self, addr: int, nbytes: int, *, write: bool,
                     kernel_mode: bool) -> None:
        """Raise the appropriate :class:`SimException` on a bad access.

        Containment contract: addresses arrive here from registers
        that faults may have corrupted arbitrarily, so *every* shape
        of bad address — negative, past the 32-bit physical space,
        wrapping around it, or carrying a corrupt size — must become a
        simulated memory fault, never a host-level error.
        """
        addr &= ADDR_MASK
        if nbytes <= 0:
            raise SimException(FaultKind.ACCESS_FAULT, addr,
                               detail=f"corrupt access size {nbytes}",
                               in_kernel=kernel_mode)
        if addr + nbytes - 1 > ADDR_MASK:
            # access wraps past the top of physical memory
            raise SimException(FaultKind.ACCESS_FAULT, addr,
                               detail="access wraps the address space",
                               in_kernel=kernel_mode)
        region = self.region_of(addr)
        if region is None or not region.contains(addr + nbytes - 1):
            raise SimException(FaultKind.ACCESS_FAULT, addr,
                               in_kernel=kernel_mode)
        if region.kernel_only and not kernel_mode:
            raise SimException(FaultKind.PRIVILEGE_FAULT, addr,
                               in_kernel=False)
        if write and not region.writable:
            raise SimException(FaultKind.ACCESS_FAULT, addr,
                               detail="write to read-only region",
                               in_kernel=kernel_mode)

    # ------------------------------------------------------------------
    # raw byte access (no privilege checks; checks happen at the CPU)
    # ------------------------------------------------------------------
    def _page_for(self, addr: int,
                  create: bool) -> "bytearray | bytes | None":
        base = addr & ~_PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            backing = self._backing
            if backing is not None:
                frozen = backing.get(base)
                if frozen is not None:
                    if not create:
                        return frozen  # read-only view of the snapshot
                    page = bytearray(frozen)
                    self._pages[base] = page
                    return page
            if create:
                page = bytearray(_PAGE)
                self._pages[base] = page
        return page

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read *nbytes* starting at *addr* (zero-fill untouched pages)."""
        addr &= ADDR_MASK
        out = bytearray()
        while nbytes:
            off = addr & _PAGE_MASK
            chunk = min(nbytes, _PAGE - off)
            page = self._page_for(addr, create=False)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[off:off + chunk])
            addr += chunk
            nbytes -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* starting at *addr*."""
        addr &= ADDR_MASK
        pos = 0
        while pos < len(data):
            off = addr & _PAGE_MASK
            chunk = min(len(data) - pos, _PAGE - off)
            page = self._page_for(addr, create=True)
            assert page is not None
            page[off:off + chunk] = data[pos:pos + chunk]
            addr += chunk
            pos += chunk

    # Convenience scalar accessors -------------------------------------
    def read_int(self, addr: int, nbytes: int, signed: bool = False) -> int:
        value = int.from_bytes(self.read(addr, nbytes), "little")
        if signed:
            top = 1 << (8 * nbytes - 1)
            if value & top:
                value -= 1 << (8 * nbytes)
        return value

    def write_int(self, addr: int, value: int, nbytes: int) -> None:
        self.write(addr, (value & ((1 << (8 * nbytes)) - 1))
                   .to_bytes(nbytes, "little"))

    def load_image(self, sections) -> None:
        """Copy a program's sections into memory."""
        for sec in sections:
            self.write(sec.base, bytes(sec.data))

    # ------------------------------------------------------------------
    # checkpoint support (see repro.uarch.snapshot)
    # ------------------------------------------------------------------
    def snapshot_pages(self) -> dict[int, bytes]:
        """Immutable copy of every materialised page (for checkpoints)."""
        pages: dict[int, bytes] = dict(self._backing) \
            if self._backing else {}
        for base, page in self._pages.items():
            pages[base] = bytes(page)
        return pages

    def restore_pages(self, pages: dict[int, bytes]) -> None:
        """Adopt a checkpoint's pages as copy-on-write backing.

        *pages* is shared (many restores may alias one checkpoint) and
        is never mutated: reads serve straight from the frozen bytes,
        while the first write to a page copies it into the private
        overlay.
        """
        self._backing = pages
        self._pages = {}

    def iter_pages(self):
        """Yield ``(base, page_bytes)`` of the effective contents,
        sorted by base address (overlay pages shadow the backing)."""
        overlay = self._pages
        backing = self._backing
        if backing:
            for base in sorted(backing.keys() | overlay.keys()):
                page = overlay.get(base)
                yield base, (page if page is not None
                             else backing[base])
        else:
            for base in sorted(overlay):
                yield base, overlay[base]
