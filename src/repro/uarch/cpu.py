"""Architectural execution semantics of mRISC.

One implementation of the instruction semantics is shared by every
engine in the package — the functional simulators behind the PVF/SVF
injectors and the out-of-order pipeline behind the AVF/HVF injector —
so a fault can never be an artefact of semantic divergence between
layers (the paper runs all gem5-based estimations on one
infrastructure for the same reason).

The semantics functions talk to the engine through a tiny adapter
interface (:class:`CoreAccess`): register reads/writes and memory
loads/stores.  The adapter is where engines differ — the functional
engine backs it with an array and flat memory, the pipeline with a
renamed physical register file and the cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import layout
from ..isa.encoding import Decoded
from .exceptions import DetectTrap, FaultKind, SimException

USER_MODE = 0
KERNEL_MODE = 1


@dataclass
class MachineState:
    """Architectural control state shared by all engines."""

    xlen: int
    pc: int = 0
    mode: int = USER_MODE
    kepc: int = 0
    halted: bool = False
    exit_code: int = 0
    mask: int = field(init=False)

    def __post_init__(self) -> None:
        self.mask = (1 << self.xlen) - 1

    @property
    def in_kernel(self) -> bool:
        return self.mode == KERNEL_MODE


class CoreAccess:
    """Adapter interface the semantics functions call into.

    Engines subclass (or duck-type) this.  ``load``/``store`` may raise
    :class:`SimException` for bad addresses; privilege checks live in
    the engines because they know the current mode.
    """

    def read_reg(self, index: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def write_reg(self, index: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def load(self, addr: int, nbytes: int, signed: bool) -> int:
        raise NotImplementedError  # pragma: no cover

    def store(self, addr: int, nbytes: int, value: int) -> None:
        raise NotImplementedError  # pragma: no cover


def to_signed(value: int, xlen: int) -> int:
    """Reinterpret an unsigned *xlen*-bit value as signed."""
    if value & (1 << (xlen - 1)):
        return value - (1 << xlen)
    return value


def sext32(value: int, xlen: int) -> int:
    """Sign-extend a 32-bit value to *xlen* bits (W-op results, LUI)."""
    value &= 0xFFFF_FFFF
    if xlen == 32:
        return value
    if value & 0x8000_0000:
        return (value | 0xFFFF_FFFF_0000_0000)
    return value


def _sdiv(a: int, b: int) -> int:
    """Signed division truncating toward zero (C semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    """Signed remainder with the sign of the dividend (C semantics)."""
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def execute(instr: Decoded, ms: MachineState, core: CoreAccess) -> int:
    """Execute one instruction; returns the next PC.

    Raises :class:`SimException` on architectural faults and
    :class:`DetectTrap` when a hardened binary signals detection.
    """
    op = instr.op
    pc = ms.pc
    mask = ms.mask
    xlen = ms.xlen
    read = core.read_reg

    # ------------------------------------------------------------------
    # ALU register-register
    # ------------------------------------------------------------------
    if op == "add":
        core.write_reg(instr.rd, (read(instr.rs1) + read(instr.rs2)) & mask)
    elif op == "sub":
        core.write_reg(instr.rd, (read(instr.rs1) - read(instr.rs2)) & mask)
    elif op == "mul":
        core.write_reg(instr.rd, (read(instr.rs1) * read(instr.rs2)) & mask)
    elif op == "div":
        b = read(instr.rs2)
        if b == 0:
            raise SimException(FaultKind.DIVISION_BY_ZERO, pc,
                               in_kernel=ms.in_kernel)
        a = to_signed(read(instr.rs1), xlen)
        core.write_reg(instr.rd, _sdiv(a, to_signed(b, xlen)) & mask)
    elif op == "rem":
        b = read(instr.rs2)
        if b == 0:
            raise SimException(FaultKind.DIVISION_BY_ZERO, pc,
                               in_kernel=ms.in_kernel)
        a = to_signed(read(instr.rs1), xlen)
        core.write_reg(instr.rd, _srem(a, to_signed(b, xlen)) & mask)
    elif op == "and":
        core.write_reg(instr.rd, read(instr.rs1) & read(instr.rs2))
    elif op == "or":
        core.write_reg(instr.rd, read(instr.rs1) | read(instr.rs2))
    elif op == "xor":
        core.write_reg(instr.rd, read(instr.rs1) ^ read(instr.rs2))
    elif op == "sll":
        core.write_reg(instr.rd,
                       (read(instr.rs1) << (read(instr.rs2) & (xlen - 1)))
                       & mask)
    elif op == "srl":
        core.write_reg(instr.rd,
                       read(instr.rs1) >> (read(instr.rs2) & (xlen - 1)))
    elif op == "sra":
        shift = read(instr.rs2) & (xlen - 1)
        core.write_reg(instr.rd,
                       (to_signed(read(instr.rs1), xlen) >> shift) & mask)
    elif op == "slt":
        core.write_reg(instr.rd,
                       int(to_signed(read(instr.rs1), xlen)
                           < to_signed(read(instr.rs2), xlen)))
    elif op == "sltu":
        core.write_reg(instr.rd, int(read(instr.rs1) < read(instr.rs2)))

    # ------------------------------------------------------------------
    # 32-bit W-variants (mRISC-64)
    # ------------------------------------------------------------------
    elif op == "addw":
        core.write_reg(instr.rd,
                       sext32(read(instr.rs1) + read(instr.rs2), xlen))
    elif op == "subw":
        core.write_reg(instr.rd,
                       sext32(read(instr.rs1) - read(instr.rs2), xlen))
    elif op == "mulw":
        core.write_reg(instr.rd,
                       sext32(read(instr.rs1) * read(instr.rs2), xlen))
    elif op == "sllw":
        core.write_reg(instr.rd,
                       sext32(read(instr.rs1) << (read(instr.rs2) & 31),
                              xlen))
    elif op == "srlw":
        core.write_reg(instr.rd,
                       sext32((read(instr.rs1) & 0xFFFF_FFFF)
                              >> (read(instr.rs2) & 31), xlen))
    elif op == "sraw":
        value = to_signed(read(instr.rs1) & 0xFFFF_FFFF, 32)
        core.write_reg(instr.rd,
                       sext32(value >> (read(instr.rs2) & 31), xlen))

    # ------------------------------------------------------------------
    # ALU immediates
    # ------------------------------------------------------------------
    elif op == "addi":
        core.write_reg(instr.rd, (read(instr.rs1) + instr.imm) & mask)
    elif op == "addiw":
        core.write_reg(instr.rd,
                       sext32(read(instr.rs1) + instr.imm, xlen))
    elif op == "andi":
        core.write_reg(instr.rd, read(instr.rs1) & (instr.imm & 0xFFFF))
    elif op == "ori":
        core.write_reg(instr.rd, read(instr.rs1) | (instr.imm & 0xFFFF))
    elif op == "xori":
        # xori with imm -1 is canonical NOT: sign-extend the immediate.
        core.write_reg(instr.rd, (read(instr.rs1) ^ (instr.imm & mask))
                       & mask)
    elif op == "slli":
        core.write_reg(instr.rd,
                       (read(instr.rs1) << (instr.imm & (xlen - 1))) & mask)
    elif op == "srli":
        core.write_reg(instr.rd,
                       read(instr.rs1) >> (instr.imm & (xlen - 1)))
    elif op == "srai":
        core.write_reg(instr.rd,
                       (to_signed(read(instr.rs1), xlen)
                        >> (instr.imm & (xlen - 1))) & mask)
    elif op == "slti":
        core.write_reg(instr.rd,
                       int(to_signed(read(instr.rs1), xlen) < instr.imm))
    elif op == "lui":
        core.write_reg(instr.rd, sext32((instr.imm & 0xFFFF) << 16, xlen))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    elif instr.d.mem_bytes and instr.d.cls == "load":
        addr = (read(instr.rs1) + instr.imm) & mask
        value = core.load(addr & 0xFFFF_FFFF, instr.d.mem_bytes,
                          instr.d.mem_signed)
        core.write_reg(instr.rd, value & mask)
    elif instr.d.mem_bytes and instr.d.cls == "store":
        addr = (read(instr.rs1) + instr.imm) & mask
        core.store(addr & 0xFFFF_FFFF, instr.d.mem_bytes,
                   read(instr.rs2))

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    elif op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        a, b = read(instr.rs1), read(instr.rs2)
        if op in ("blt", "bge"):
            a, b = to_signed(a, xlen), to_signed(b, xlen)
        taken = ((op == "beq" and a == b)
                 or (op == "bne" and a != b)
                 or (op in ("blt", "bltu") and a < b)
                 or (op in ("bge", "bgeu") and a >= b))
        return (pc + 4 + instr.imm) if taken else pc + 4
    elif op == "j":
        return pc + 4 + instr.imm
    elif op == "jal":
        core.write_reg(_link_reg(xlen), (pc + 4) & mask)
        return pc + 4 + instr.imm
    elif op == "jr":
        return read(instr.rs1) & mask
    elif op == "jalr":
        target = read(instr.rs1) & mask
        core.write_reg(instr.rd, (pc + 4) & mask)
        return target

    # ------------------------------------------------------------------
    # system
    # ------------------------------------------------------------------
    elif op == "syscall":
        ms.kepc = pc + 4
        ms.mode = KERNEL_MODE
        return layout.KERNEL_CODE_BASE
    elif op == "eret":
        if not ms.in_kernel:
            raise SimException(FaultKind.ILLEGAL_INSTRUCTION, pc,
                               detail="eret in user mode", in_kernel=False)
        ms.mode = USER_MODE
        return ms.kepc
    elif op == "halt":
        if not ms.in_kernel:
            raise SimException(FaultKind.ILLEGAL_INSTRUCTION, pc,
                               detail="halt in user mode", in_kernel=False)
        ms.halted = True
        return pc + 4
    elif op == "detect":
        raise DetectTrap
    else:  # pragma: no cover - table and semantics must stay in sync
        raise SimException(FaultKind.ILLEGAL_INSTRUCTION, pc,
                           detail=f"no semantics for {op}",
                           in_kernel=ms.in_kernel)

    return pc + 4


def _link_reg(xlen: int) -> int:
    return 14 if xlen == 32 else 30


def branch_outcome(instr: Decoded, next_pc: int, pc: int) -> tuple[bool, int]:
    """(taken?, target) for a control-flow instruction, given its result."""
    fallthrough = pc + 4
    return next_pc != fallthrough, next_pc
