"""Microarchitecture simulation substrate (the gem5/GeFIN stand-in).

Modules:

* :mod:`~repro.uarch.config` — the four core presets (Table II).
* :mod:`~repro.uarch.pipeline` — out-of-order engine with bit-accurate
  fault targets (RF, LSQ, L1I, L1D, L2) and HVF instrumentation.
* :mod:`~repro.uarch.functional` — timing-free engines for golden
  runs, PVF (simulated kernel) and SVF (host-emulated kernel).
* :mod:`~repro.uarch.cache`, :mod:`~repro.uarch.regfile`,
  :mod:`~repro.uarch.lsq`, :mod:`~repro.uarch.branch`,
  :mod:`~repro.uarch.memory` — the individual hardware structures.
"""

from .config import (
    ALL_CONFIGS,
    CORTEX_A9,
    CORTEX_A15,
    CORTEX_A57,
    CORTEX_A72,
    STRUCTURES,
    CacheConfig,
    MicroarchConfig,
    config_by_name,
)
from .exceptions import DetectTrap, FaultKind, SimException
from .functional import (
    FaultAction,
    FuncResult,
    FunctionalEngine,
    RunStatus,
    run_functional,
)
from .pipeline import PipelineEngine, PipelineResult, run_pipeline

__all__ = [
    "ALL_CONFIGS",
    "CORTEX_A15",
    "CORTEX_A57",
    "CORTEX_A72",
    "CORTEX_A9",
    "CacheConfig",
    "DetectTrap",
    "FaultAction",
    "FaultKind",
    "FuncResult",
    "FunctionalEngine",
    "MicroarchConfig",
    "PipelineEngine",
    "PipelineResult",
    "RunStatus",
    "STRUCTURES",
    "SimException",
    "config_by_name",
    "run_functional",
    "run_pipeline",
]
