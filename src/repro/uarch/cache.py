"""Data-carrying cache models (L1I, L1D, unified L2).

The caches hold *real bytes*, not just tags: this is what lets a
single-bit fault injected into a cache line behave exactly like the
paper describes — it can be

* masked (line invalid, line overwritten, clean line evicted),
* consumed by a load or an instruction fetch (WD / WI / WOI crossing),
* written back to the next level and consumed much later, or
* drained by the DMA engine at program end without ever re-entering
  the pipeline (the ESC fault propagation model).

Organisation: set-associative, write-back, write-allocate, LRU.
Latency accounting is returned to the caller (the timing engine) per
access.

Taint: each line may carry a set of corrupted byte offsets.  Stores
clear taint on the bytes they overwrite; fills and writebacks move
taint between levels and into main memory; loads and fetches report
taint overlap to the :class:`TaintProbe` so the HVF machinery can
record the architectural-crossing moment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .memory import ADDR_MASK, Memory


@dataclass
class TaintProbe:
    """Records corruption flow for HVF/FPM analysis.

    A campaign installs one probe per injection run.  ``mem_taint``
    holds absolute byte addresses whose *main memory* copy is corrupt.
    """

    #: absolute addresses of corrupted bytes in main memory
    mem_taint: set = field(default_factory=set)
    #: whether any corrupted state still exists anywhere
    any_taint: bool = False

    def note_mem_taint(self, addrs) -> None:
        self.mem_taint.update(addrs)
        if self.mem_taint:
            self.any_taint = True

    def clear_mem_taint(self, addr: int, nbytes: int) -> None:
        if self.mem_taint:
            for a in range(addr, addr + nbytes):
                self.mem_taint.discard(a)


class Line:
    """One cache line."""

    __slots__ = ("tag", "valid", "dirty", "data", "lru", "taint")

    def __init__(self, line_size: int) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.data = bytearray(line_size)
        self.lru = 0
        #: byte offsets (within the line) whose content is corrupted
        #: relative to the fault-free execution; None when clean.
        self.taint: set | None = None


class Cache:
    """A set-associative write-back cache level."""

    def __init__(self, name: str, size: int, assoc: int, line_size: int,
                 hit_latency: int, parent: "Cache | MemoryPort") -> None:
        if size % (assoc * line_size):
            raise ValueError(f"{name}: size {size} not divisible by "
                             f"assoc*line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.parent = parent
        self.n_sets = size // (assoc * line_size)
        # Ways are allocated lazily: a 2 MiB L2 is 32k lines, and most
        # runs touch a few hundred.  A missing way is an invalid line.
        self.sets: list[list[Line]] = [[] for _ in range(self.n_sets)]
        self._tick = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.valid_lines = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    @property
    def n_lines(self) -> int:
        return self.n_sets * self.assoc

    @property
    def bits(self) -> int:
        """Total data-bit capacity (the fault-injection population)."""
        return self.n_lines * self.line_size * 8

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line_addr = addr // self.line_size
        return line_addr % self.n_sets, line_addr // self.n_sets

    def line_base(self, index: int, tag: int) -> int:
        return (tag * self.n_sets + index) * self.line_size

    # ------------------------------------------------------------------
    # the access path
    # ------------------------------------------------------------------
    def _find(self, index: int, tag: int) -> Line | None:
        for line in self.sets[index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def _victim(self, index: int) -> Line:
        ways = self.sets[index]
        for line in ways:
            if not line.valid:
                return line
        if len(ways) < self.assoc:
            line = Line(self.line_size)
            ways.append(line)
            return line
        return min(ways, key=lambda l: l.lru)

    def _fill(self, addr: int, probe: TaintProbe | None) -> tuple[Line, int]:
        """Bring the line containing *addr* into this level.

        Returns ``(line, extra_latency)`` where the latency is the cost
        paid below this level.
        """
        index, tag = self._index_tag(addr)
        victim = self._victim(index)
        extra = 0
        if victim.valid:
            self._evict(victim, index, probe)
        else:
            self.valid_lines += 1
        line_base = (addr // self.line_size) * self.line_size
        data, below = self.parent.read_line(line_base, self.line_size,
                                            probe)
        extra += below
        victim.tag = tag
        victim.valid = True
        victim.dirty = False
        victim.data[:] = data
        victim.taint = self.parent.taint_of(line_base, self.line_size,
                                            probe)
        self.misses += 1
        return victim, extra

    def _evict(self, line: Line, index: int, probe: TaintProbe | None) -> None:
        """Evict a valid line, writing back if dirty.

        A *clean* corrupted line dies silently here — one of the
        hardware masking channels.  A dirty corrupted line pushes its
        corruption down a level.
        """
        if line.dirty:
            base = self.line_base(index, line.tag)
            self.parent.write_line(base, bytes(line.data), line.taint,
                                   probe)
            self.writebacks += 1
        line.valid = False
        line.dirty = False
        line.taint = None
        line.tag = -1

    def read(self, addr: int, nbytes: int,
             probe: TaintProbe | None = None) -> tuple[bytes, int, bool]:
        """Read bytes; returns ``(data, latency, tainted)``.

        ``tainted`` is True when any returned byte is corrupted — the
        caller (pipeline) records the architectural crossing.
        """
        addr &= ADDR_MASK
        end = addr + nbytes
        out = bytearray()
        latency = 0
        tainted = False
        first = True
        while addr < end:
            line_base = (addr // self.line_size) * self.line_size
            chunk_end = min(end, line_base + self.line_size)
            index, tag = self._index_tag(addr)
            line = self._find(index, tag)
            if line is None:
                line, extra = self._fill(addr, probe)
                latency += extra
            else:
                self.hits += 1
            if first:
                latency += self.hit_latency
                first = False
            self._tick += 1
            line.lru = self._tick
            off = addr - line_base
            length = chunk_end - addr
            out.extend(line.data[off:off + length])
            if line.taint and any(off <= t < off + length
                                  for t in line.taint):
                tainted = True
            addr = chunk_end
        return bytes(out), latency, tainted

    def write(self, addr: int, data: bytes,
              probe: TaintProbe | None = None) -> int:
        """Write bytes (write-allocate); returns latency.

        Overwritten bytes lose their taint: new, architecturally
        produced data replaces the corrupted content.
        """
        addr &= ADDR_MASK
        pos = 0
        latency = 0
        first = True
        while pos < len(data):
            line_base = (addr // self.line_size) * self.line_size
            chunk = min(len(data) - pos, line_base + self.line_size - addr)
            index, tag = self._index_tag(addr)
            line = self._find(index, tag)
            if line is None:
                line, extra = self._fill(addr, probe)
                latency += extra
            else:
                self.hits += 1
            if first:
                latency += self.hit_latency
                first = False
            self._tick += 1
            line.lru = self._tick
            off = addr - line_base
            line.data[off:off + chunk] = data[pos:pos + chunk]
            if line.taint:
                line.taint -= set(range(off, off + chunk))
                if not line.taint:
                    line.taint = None
            line.dirty = True
            addr += chunk
            pos += chunk
        return latency

    # ------------------------------------------------------------------
    # downstream interface (called by the level above)
    # ------------------------------------------------------------------
    def read_line(self, base: int, length: int,
                  probe: TaintProbe | None) -> tuple[bytes, int]:
        data, latency, _ = self.read(base, length, probe)
        return data, latency

    def taint_of(self, base: int, length: int,
                 probe: TaintProbe | None) -> set | None:
        """Taint byte-offsets of the line at *base* as served by this level."""
        index, tag = self._index_tag(base)
        line = self._find(index, tag)
        if line is not None and line.taint:
            return set(line.taint)
        return self.parent.taint_of(base, length, probe)

    def write_line(self, base: int, data: bytes, taint: set | None,
                   probe: TaintProbe | None) -> None:
        """Accept a writeback from the level above."""
        index, tag = self._index_tag(base)
        line = self._find(index, tag)
        if line is None:
            line, _ = self._fill(base, probe)
        line.data[:] = data
        line.dirty = True
        line.taint = set(taint) if taint else None
        self._tick += 1
        line.lru = self._tick

    # ------------------------------------------------------------------
    # coherent (non-destructive) lookup — used by the DMA engine
    # ------------------------------------------------------------------
    def snoop(self, addr: int, nbytes: int) -> bytes | None:
        """Return this level's copy of the bytes, or None if absent.

        Does not change replacement or statistics state — the DMA
        engine observes, it does not execute through the pipeline.
        The requested range must not straddle a line boundary (the
        hierarchy-level coherent reader splits requests per line).
        """
        line_base = (addr // self.line_size) * self.line_size
        if addr + nbytes > line_base + self.line_size:
            raise ValueError("snoop request straddles a cache line")
        index, tag = self._index_tag(addr)
        line = self._find(index, tag)
        if line is None:
            return None
        off = addr - line_base
        return bytes(line.data[off:off + nbytes])

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def flip_bit(self, set_index: int, way: int, bit: int) -> dict:
        """Flip one data bit of the addressed line.

        Returns a record describing what was hit; if the line is
        invalid the flip lands in dead state and is masked at the
        hardware layer.
        """
        ways = self.sets[set_index]
        if way >= len(ways):
            return {"live": False}  # never-allocated way: dead state
        line = ways[way]
        byte_off, bit_in_byte = divmod(bit, 8)
        if not line.valid:
            return {"live": False}
        line.data[byte_off] ^= 1 << bit_in_byte
        if line.taint is None:
            line.taint = set()
        if byte_off in line.taint:
            # flipping an already-tainted byte may restore it; keep the
            # conservative marking (still possibly wrong).
            pass
        line.taint.add(byte_off)
        return {
            "live": True,
            "dirty": line.dirty,
            "addr": self.line_base(set_index, line.tag) + byte_off,
            "byte_off": byte_off,
        }

    @property
    def tag_bits(self) -> int:
        """Width of one line's tag field (32-bit physical addresses)."""
        import math

        return 32 - int(math.log2(self.n_sets)) \
            - int(math.log2(self.line_size))

    def flip_tag_bit(self, set_index: int, way: int, bit: int) -> dict:
        """Flip one *tag* bit of the addressed line (extension model).

        A corrupted tag makes the line answer for a different address:
        lookups of the original address miss (a dirty line's data is
        silently lost), the aliased address can spuriously hit and
        read foreign data, and an eventual writeback lands at the
        *wrong* location — all of which emerge naturally from the
        data-carrying model.  The whole line is marked tainted since
        its content is wrong for the address it now claims.
        """
        ways = self.sets[set_index]
        if way >= len(ways):
            return {"live": False}
        line = ways[way]
        if not line.valid or not 0 <= bit < self.tag_bits:
            return {"live": False}
        line.tag ^= 1 << bit
        line.taint = set(range(self.line_size))
        return {"live": True, "dirty": line.dirty,
                "new_tag": line.tag}

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        return self.valid_lines / self.n_lines if self.n_lines else 0.0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writebacks": self.writebacks,
                "valid_lines": self.valid_lines,
                "occupancy": self.occupancy()}


class MemoryPort:
    """Terminal level: main memory behind a fixed DRAM latency."""

    def __init__(self, memory: Memory, latency: int) -> None:
        self.memory = memory
        self.latency = latency

    def read_line(self, base: int, length: int,
                  probe: TaintProbe | None) -> tuple[bytes, int]:
        return self.memory.read(base, length), self.latency

    def taint_of(self, base: int, length: int,
                 probe: TaintProbe | None) -> set | None:
        if probe is None or not probe.mem_taint:
            return None
        overlap = {a - base for a in probe.mem_taint
                   if base <= a < base + length}
        return overlap or None

    def write_line(self, base: int, data: bytes, taint: set | None,
                   probe: TaintProbe | None) -> None:
        self.memory.write(base, data)
        if probe is not None:
            probe.clear_mem_taint(base, len(data))
            if taint:
                probe.note_mem_taint(base + off for off in taint)

    def snoop(self, addr: int, nbytes: int) -> bytes:
        return self.memory.read(addr, nbytes)
