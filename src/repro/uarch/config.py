"""Microarchitecture configurations for the four simulated cores.

The four presets mirror the paper's Table II: two mRISC-32 ("Armv7")
cores resembling Cortex-A9 and Cortex-A15, and two mRISC-64 ("Armv8")
cores resembling Cortex-A57 and Cortex-A72.  Where the paper's table
omits a parameter (functional-unit counts, predictor sizes, cache
associativity, ...) we use the publicly documented values of the real
cores.

The five fault-injection target structures and their bit capacities
(used for the paper's size-weighted AVF/FPM aggregation) are derived
from these configurations via :meth:`MicroarchConfig.structure_bits`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.registers import MR32, MR64, register_set

#: Canonical names of the five injection-target hardware structures.
STRUCTURES = ("RF", "LSQ", "L1I", "L1D", "L2")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size: int                 # bytes
    assoc: int
    line_size: int = 64
    latency: int = 2          # cycles for a hit

    @property
    def n_lines(self) -> int:
        return self.size // self.line_size

    @property
    def bits(self) -> int:
        return self.size * 8


@dataclass(frozen=True)
class MicroarchConfig:
    """Full description of one simulated out-of-order core."""

    name: str
    isa: str

    # pipeline shape
    fetch_width: int
    commit_width: int
    frontend_depth: int       # stages between fetch and execute
    rob_size: int
    iq_size: int

    # renamed register file and LSQ
    n_phys_regs: int
    lsq_size: int

    # functional units
    n_alu: int
    n_mul: int = 1
    n_div: int = 1
    n_mem_ports: int = 1
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12

    # memory hierarchy
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(512 * 1024, 8,
                                                                latency=12))
    dram_latency: int = 120

    # branch prediction
    predictor_entries: int = 2048
    btb_entries: int = 512
    mispredict_penalty: int | None = None   # defaults to frontend_depth

    @property
    def xlen(self) -> int:
        return register_set(self.isa).xlen

    @property
    def penalty(self) -> int:
        return (self.mispredict_penalty if self.mispredict_penalty
                is not None else self.frontend_depth)

    # ------------------------------------------------------------------
    # fault-injection populations
    # ------------------------------------------------------------------
    @property
    def lsq_entry_bits(self) -> int:
        """One LSQ entry: a 32-bit address field + a data field."""
        return 32 + self.xlen

    def structure_bits(self, structure: str) -> int:
        """Bit capacity of one injection-target structure.

        This is the paper's weighting factor: the FIT-rate of the chip
        is the AVF-weighted sum of per-structure bit counts, so larger
        structures (the L2 above all) dominate the weighted AVF.
        """
        if structure == "RF":
            return self.n_phys_regs * self.xlen
        if structure == "LSQ":
            return self.lsq_size * self.lsq_entry_bits
        if structure == "L1I":
            return self.l1i.bits
        if structure == "L1D":
            return self.l1d.bits
        if structure == "L2":
            return self.l2.bits
        raise KeyError(f"unknown structure {structure!r}; "
                       f"expected one of {STRUCTURES}")

    def total_bits(self) -> int:
        return sum(self.structure_bits(s) for s in STRUCTURES)

    def structure_weights(self) -> dict[str, float]:
        """Normalised size weights of the five structures."""
        total = self.total_bits()
        return {s: self.structure_bits(s) / total for s in STRUCTURES}


# ---------------------------------------------------------------------------
# The four cores of the study (Table II)
#
# Cache capacities are the real cores' sizes scaled down by
# CACHE_SCALE (16x), preserving every relative relation of Table II
# (A9:A15:A57:A72 L2 = 512K:1M:1M:2M -> 32K:64K:64K:128K).  The
# workload suite is itself scaled down (second-scale simulations of
# kB-footprint kernels), and the paper's cache-resident fault dynamics
# — dirty output lines spilling into the L2, code refetched from the
# unified L2, eviction/writeback masking, the ESC escape channel —
# only exist when footprints relate to capacities the way MiBench
# relates to the real cores.  See DESIGN.md §2.
# ---------------------------------------------------------------------------
CACHE_SCALE = 16

#: the L1s are scaled harder: the scaled workloads' kB footprints must
#: exceed the L1D (as MiBench exceeds a real 32K L1D) for the paper's
#: eviction/writeback/escape dynamics to exist at all
L1_SCALE = 32

CORTEX_A9 = MicroarchConfig(
    name="cortex-a9", isa=MR32,
    fetch_width=2, commit_width=2, frontend_depth=8,
    rob_size=40, iq_size=16,
    n_phys_regs=56, lsq_size=8,
    n_alu=2, n_mul=1, n_div=1, n_mem_ports=1,
    mul_latency=4, div_latency=20,
    l1i=CacheConfig(32 * 1024 // L1_SCALE, 4, latency=1),
    l1d=CacheConfig(32 * 1024 // L1_SCALE, 4, latency=2),
    l2=CacheConfig(512 * 1024 // CACHE_SCALE, 8, latency=10),
    dram_latency=110,
    predictor_entries=1024, btb_entries=256,
)

CORTEX_A15 = MicroarchConfig(
    name="cortex-a15", isa=MR32,
    fetch_width=3, commit_width=3, frontend_depth=15,
    rob_size=60, iq_size=32,
    n_phys_regs=90, lsq_size=16,
    n_alu=2, n_mul=1, n_div=1, n_mem_ports=2,
    mul_latency=4, div_latency=16,
    l1i=CacheConfig(32 * 1024 // L1_SCALE, 2, latency=1),
    l1d=CacheConfig(32 * 1024 // L1_SCALE, 2, latency=2),
    l2=CacheConfig(1024 * 1024 // CACHE_SCALE, 16, latency=12),
    dram_latency=120,
    predictor_entries=4096, btb_entries=512,
)

CORTEX_A57 = MicroarchConfig(
    name="cortex-a57", isa=MR64,
    fetch_width=3, commit_width=3, frontend_depth=15,
    rob_size=128, iq_size=32,
    n_phys_regs=128, lsq_size=16,
    n_alu=2, n_mul=1, n_div=1, n_mem_ports=2,
    mul_latency=3, div_latency=12,
    l1i=CacheConfig(48 * 1024 // L1_SCALE, 3, latency=1),
    l1d=CacheConfig(32 * 1024 // L1_SCALE, 2, latency=2),
    l2=CacheConfig(1024 * 1024 // CACHE_SCALE, 16, latency=12),
    dram_latency=120,
    predictor_entries=4096, btb_entries=1024,
)

CORTEX_A72 = MicroarchConfig(
    name="cortex-a72", isa=MR64,
    fetch_width=3, commit_width=3, frontend_depth=15,
    rob_size=128, iq_size=64,
    n_phys_regs=192, lsq_size=32,
    n_alu=2, n_mul=1, n_div=1, n_mem_ports=2,
    mul_latency=3, div_latency=12,
    l1i=CacheConfig(48 * 1024 // L1_SCALE, 3, latency=1),
    l1d=CacheConfig(32 * 1024 // L1_SCALE, 2, latency=2),
    l2=CacheConfig(2048 * 1024 // CACHE_SCALE, 16, latency=14),
    dram_latency=120,
    predictor_entries=8192, btb_entries=1024,
)

ALL_CONFIGS = (CORTEX_A9, CORTEX_A15, CORTEX_A57, CORTEX_A72)

BY_NAME = {c.name: c for c in ALL_CONFIGS}


def config_by_name(name: str) -> MicroarchConfig:
    """Look a preset up by name (``cortex-a72`` etc.)."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown core {name!r}; "
                       f"have {sorted(BY_NAME)}") from None
