"""repro — cross-layer transient-fault vulnerability analysis.

A production-quality reproduction of *"Demystifying the System
Vulnerability Stack: Transient Fault Effects Across the Layers"*
(Papadimitriou & Gizopoulos, ISCA 2021).

The package measures the vulnerability of a simulated full system at
four abstraction layers and exposes the paper's analyses:

* **AVF** — ground-truth cross-layer vulnerability from
  microarchitecture-level fault injection (:mod:`repro.injectors.gefin`).
* **HVF** — hardware vulnerability + Fault Propagation Model breakdown.
* **PVF** — architecture-level vulnerability (kernel included).
* **SVF** — LLFI-style software-level vulnerability (user code only).
* **rPVF** — PVF refined by the HVF-measured FPM distribution.

Quickstart::

    from repro import run_campaign, CORTEX_A72
    result = run_campaign("sha", CORTEX_A72, injector="gefin",
                          structure="RF", n=200, seed=1)
    print(result.avf(), result.summary())

See ``examples/`` for end-to-end studies and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from __future__ import annotations

__version__ = "1.0.0"

# Re-exported lazily-importable names.  Heavy subpackages (uarch,
# injectors) import numpy etc.; keep the top level cheap but complete.
from .isa import MR32, MR64, assemble  # noqa: F401
from .uarch.config import (  # noqa: F401
    CORTEX_A9,
    CORTEX_A15,
    CORTEX_A57,
    CORTEX_A72,
    ALL_CONFIGS,
    MicroarchConfig,
)
from .faults.outcomes import Outcome, CrashKind  # noqa: F401
from .faults.fpm import FPM  # noqa: F401
from .injectors.campaign import CampaignResult, run_campaign  # noqa: F401
from .workloads import WORKLOADS, load_workload  # noqa: F401
from .core.study import CrossLayerStudy  # noqa: F401

__all__ = [
    "ALL_CONFIGS",
    "CORTEX_A15",
    "CORTEX_A57",
    "CORTEX_A72",
    "CORTEX_A9",
    "CampaignResult",
    "CrashKind",
    "CrossLayerStudy",
    "FPM",
    "MR32",
    "MR64",
    "MicroarchConfig",
    "Outcome",
    "WORKLOADS",
    "assemble",
    "load_workload",
    "run_campaign",
    "__version__",
]
